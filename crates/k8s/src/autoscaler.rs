//! The cluster autoscaler: a control loop that scales a typed node pool
//! up on pending-pod pressure and down after an idle cooldown.
//!
//! Real cluster autoscalers ask the cloud for new VMs; here the pool's
//! capacity is pre-provisioned but *parked* — a parked node is registered
//! not-ready, so the scheduler skips it and it bills nothing. Scale-up
//! unparks the lowest-id parked node; scale-down re-parks a node once it
//! has run no pods for the cooldown. The loop only ever touches nodes it
//! parked itself, so chaos-injected failures are never "healed" by the
//! autoscaler and an externally recovered node is simply released from
//! the pool's bookkeeping.
//!
//! Nothing in the default stack spawns this loop: runs without an
//! autoscaler are bit-identical to runs before it existed.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use swf_cluster::NodeId;
use swf_simcore::{now, secs, sleep, SimDuration, SimTime};

use crate::api::ApiServer;
use crate::pod::PodPhase;

/// Called with `(node, ready)` on every scale event the loop performs, so
/// an external ledger (e.g. cost accounting) can bill node-seconds.
pub type ScaleListener = Rc<dyn Fn(NodeId, bool)>;

/// Node-pool autoscaler parameters.
#[derive(Clone)]
pub struct NodePoolConfig {
    /// The flexible nodes this loop manages (the fixed remainder of the
    /// cluster is never touched).
    pub nodes: Vec<NodeId>,
    /// Lower clamp on unparked managed nodes.
    pub min_ready: usize,
    /// Park every managed node above `min_ready` at start, so the pool
    /// grows from its floor on demand.
    pub start_parked: bool,
    /// Reconcile interval.
    pub tick: SimDuration,
    /// How long a managed node must be pod-free before it is re-parked.
    pub idle_cooldown: SimDuration,
}

impl Default for NodePoolConfig {
    fn default() -> Self {
        NodePoolConfig {
            nodes: Vec::new(),
            min_ready: 0,
            start_parked: true,
            tick: secs(1.0),
            idle_cooldown: secs(30.0),
        }
    }
}

/// The control loop. Cheap to clone; all state is shared.
#[derive(Clone)]
pub struct NodePoolAutoscaler {
    api: ApiServer,
    config: NodePoolConfig,
    state: Rc<RefCell<PoolState>>,
    listener: Option<ScaleListener>,
}

struct PoolState {
    /// Nodes this loop parked (and may therefore unpark).
    parked: BTreeSet<NodeId>,
    /// Last instant each managed node hosted a pod.
    last_busy: BTreeMap<NodeId, SimTime>,
    scale_ups: u64,
    scale_downs: u64,
}

impl NodePoolAutoscaler {
    /// New autoscaler over `api`. Does nothing until [`run`](Self::run)
    /// (or [`tick`](Self::tick)) is driven.
    pub fn new(api: ApiServer, config: NodePoolConfig) -> Self {
        NodePoolAutoscaler {
            api,
            config,
            state: Rc::new(RefCell::new(PoolState {
                parked: BTreeSet::new(),
                last_busy: BTreeMap::new(),
                scale_ups: 0,
                scale_downs: 0,
            })),
            listener: None,
        }
    }

    /// Attach a scale-event listener (e.g. a cost ledger).
    pub fn with_listener(mut self, listener: ScaleListener) -> Self {
        self.listener = Some(listener);
        self
    }

    /// Scale-up events performed so far.
    pub fn scale_ups(&self) -> u64 {
        self.state.borrow().scale_ups
    }

    /// Scale-down events performed so far.
    pub fn scale_downs(&self) -> u64 {
        self.state.borrow().scale_downs
    }

    /// Managed nodes currently parked by this loop.
    pub fn parked(&self) -> Vec<NodeId> {
        self.state.borrow().parked.iter().copied().collect()
    }

    /// Run forever, reconciling at the configured tick.
    pub async fn run(self) {
        if self.config.start_parked {
            let surplus: Vec<NodeId> = self
                .config
                .nodes
                .iter()
                .copied()
                .skip(self.config.min_ready)
                .collect();
            for id in surplus {
                self.park(id);
            }
        }
        loop {
            self.tick();
            sleep(self.config.tick).await;
        }
    }

    /// One reconcile pass (public for tests/ablations).
    pub fn tick(&self) {
        let obs = swf_obs::current();
        // Release bookkeeping for nodes someone else woke (chaos recovery,
        // manual intervention): they are no longer ours to re-park first.
        {
            let mut s = self.state.borrow_mut();
            let woken: Vec<NodeId> = s
                .parked
                .iter()
                .copied()
                .filter(|id| self.api.node_ready(*id))
                .collect();
            for id in woken {
                s.parked.remove(&id);
            }
        }

        let pending = self
            .api
            .pods()
            .filter(|p| {
                p.status.phase == PodPhase::Pending
                    && p.status.node.is_none()
                    && !p.meta.deletion_requested
            })
            .len();
        if pending > 0 {
            obs.observe("k8s.autoscaler.pending_pods", pending as f64);
            // One node per tick: deliberate, like real CA's rate limiting —
            // pressure that persists keeps unparking on subsequent ticks.
            let candidate = self.state.borrow().parked.iter().next().copied();
            if let Some(id) = candidate {
                self.unpark(id);
            }
        }

        // Track busyness and park idle surplus.
        let busy_nodes: BTreeSet<NodeId> = self
            .api
            .pods()
            .filter(|p| {
                p.status.node.is_some()
                    && p.status.phase != PodPhase::Failed
                    && p.status.phase != PodPhase::Succeeded
            })
            .into_iter()
            .filter_map(|p| p.status.node)
            .collect();
        let t = now();
        let mut to_park: Vec<NodeId> = Vec::new();
        {
            let mut s = self.state.borrow_mut();
            let mut ready_count = self
                .config
                .nodes
                .iter()
                .filter(|id| self.api.node_ready(**id))
                .count();
            for &id in &self.config.nodes {
                if busy_nodes.contains(&id) {
                    s.last_busy.insert(id, t);
                    continue;
                }
                if !self.api.node_ready(id) || ready_count <= self.config.min_ready {
                    continue;
                }
                let last = s.last_busy.get(&id).copied().unwrap_or(SimTime::ZERO);
                if t.since(last) >= self.config.idle_cooldown {
                    to_park.push(id);
                    ready_count -= 1;
                }
            }
        }
        for id in to_park {
            self.park(id);
        }
    }

    fn park(&self, id: NodeId) {
        self.api
            .nodes()
            .update(&id.to_string(), |n| n.ready = false);
        let mut s = self.state.borrow_mut();
        s.parked.insert(id);
        s.scale_downs += 1;
        swf_obs::current().counter_add("k8s.autoscaler.scale_downs", 1);
        if let Some(l) = &self.listener {
            l(id, false);
        }
    }

    fn unpark(&self, id: NodeId) {
        self.api.nodes().update(&id.to_string(), |n| n.ready = true);
        let mut s = self.state.borrow_mut();
        s.parked.remove(&id);
        s.scale_ups += 1;
        swf_obs::current().counter_add("k8s.autoscaler.scale_ups", 1);
        if let Some(l) = &self.listener {
            l(id, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control_plane::{K8s, K8sConfig};
    use crate::meta::ObjectMeta;
    use crate::pod::{Pod, PodSpec};
    use swf_cluster::{Cluster, ClusterConfig};
    use swf_container::{Image, ImageRef, Registry, RegistryConfig};
    use swf_simcore::{spawn, Sim};

    fn boot() -> (K8s, ImageRef) {
        let cluster = Cluster::new(&ClusterConfig::default());
        let registry = Registry::new(RegistryConfig::default());
        let image = ImageRef::parse("fn:v1");
        registry.push(Image::python_scientific(image.clone(), 1));
        let k8s = K8s::start(&cluster, registry, K8sConfig::default(), 7);
        (k8s, image)
    }

    #[test]
    fn pending_pressure_unparks_and_idle_cooldown_reparks() {
        let sim = Sim::new();
        sim.block_on(async {
            let (k8s, image) = boot();
            let scaler = NodePoolAutoscaler::new(
                k8s.api().clone(),
                NodePoolConfig {
                    nodes: vec![NodeId(2), NodeId(3)],
                    min_ready: 0,
                    start_parked: true,
                    tick: secs(1.0),
                    idle_cooldown: secs(5.0),
                },
            );
            spawn(scaler.clone().run());
            k8s.settle().await;
            assert_eq!(scaler.parked(), vec![NodeId(2), NodeId(3)]);
            assert!(!k8s.node_is_ready(NodeId(2)));

            // Saturate node 1 (the only unmanaged worker) so a new pod
            // pends, then watch the pool grow.
            let mut hog = Pod::new(
                ObjectMeta::named("hog"),
                PodSpec::new(image.clone()).with_resources(swf_container::ResourceLimits {
                    cpu_millis: 8_000,
                    memory: swf_cluster::mib(256),
                }),
            );
            hog.spec.node_name = Some(NodeId(1));
            k8s.api().create_pod(hog).await.unwrap();
            let p = Pod::new(ObjectMeta::named("p"), PodSpec::new(image.clone()));
            k8s.api().create_pod(p).await.unwrap();
            k8s.wait_pod_ready("p", secs(60.0)).await.unwrap();
            assert!(scaler.scale_ups() >= 1);
            assert!(k8s.node_is_ready(NodeId(2)), "pressure unparks node 2");

            // Drain the demand; after the cooldown the pool parks again.
            k8s.api().delete_pod("p").await.unwrap();
            k8s.api().delete_pod("hog").await.unwrap();
            sleep(secs(15.0)).await;
            assert!(!k8s.node_is_ready(NodeId(2)), "idle node re-parked");
            assert!(scaler.scale_downs() >= 2);
        });
    }

    #[test]
    fn never_unparks_a_node_it_did_not_park() {
        let sim = Sim::new();
        sim.block_on(async {
            let (k8s, image) = boot();
            let scaler = NodePoolAutoscaler::new(
                k8s.api().clone(),
                NodePoolConfig {
                    nodes: vec![NodeId(3)],
                    min_ready: 1,
                    start_parked: true,
                    tick: secs(1.0),
                    idle_cooldown: secs(5.0),
                },
            );
            spawn(scaler.clone().run());
            k8s.settle().await;
            // min_ready keeps node 3 unparked; a chaos fault takes it down.
            assert!(k8s.node_is_ready(NodeId(3)));
            k8s.fail_node(NodeId(3));
            // Pending pressure must NOT heal the faulted node.
            let p = Pod::new(
                ObjectMeta::named("p"),
                PodSpec::new(image).with_resources(swf_container::ResourceLimits {
                    cpu_millis: 64_000,
                    memory: swf_cluster::mib(1),
                }),
            );
            k8s.api().create_pod(p).await.unwrap();
            sleep(secs(10.0)).await;
            assert!(!k8s.node_is_ready(NodeId(3)));
            assert_eq!(scaler.scale_ups(), 0);
        });
    }
}
