//! Deployments and ReplicaSets.

use crate::meta::{LabelSelector, ObjectMeta};
use crate::pod::PodSpec;

/// Template stamped onto pods created by a ReplicaSet.
#[derive(Clone, Debug)]
pub struct PodTemplate {
    /// Labels applied to created pods.
    pub meta: ObjectMeta,
    /// Pod spec for created pods.
    pub spec: PodSpec,
}

/// A ReplicaSet keeps `replicas` matching pods alive.
#[derive(Clone, Debug)]
pub struct ReplicaSet {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Desired replica count.
    pub replicas: u32,
    /// Which pods this set owns.
    pub selector: LabelSelector,
    /// Template for new pods.
    pub template: PodTemplate,
    /// Observed ready replicas (status).
    pub ready_replicas: u32,
}

/// A Deployment manages a ReplicaSet (single revision in this model —
/// rollout strategies are out of scope for the paper's experiments).
#[derive(Clone, Debug)]
pub struct Deployment {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Desired replica count.
    pub replicas: u32,
    /// Pod selector.
    pub selector: LabelSelector,
    /// Pod template.
    pub template: PodTemplate,
}

impl Deployment {
    /// Convenience constructor.
    pub fn new(
        meta: ObjectMeta,
        replicas: u32,
        selector: LabelSelector,
        template: PodTemplate,
    ) -> Self {
        Deployment {
            meta,
            replicas,
            selector,
            template,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_container::ImageRef;

    #[test]
    fn deployment_construction() {
        let d = Deployment::new(
            ObjectMeta::named("fn-matmul"),
            2,
            LabelSelector::eq("app", "matmul"),
            PodTemplate {
                meta: ObjectMeta::default().with_label("app", "matmul"),
                spec: PodSpec::new(ImageRef::parse("matmul")),
            },
        );
        assert_eq!(d.replicas, 2);
        assert!(d.selector.matches(&d.template.meta.labels));
    }
}
