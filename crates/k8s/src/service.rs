//! Services and endpoints: stable names in front of ready pods.

use std::cell::Cell;
use std::rc::Rc;

use swf_cluster::NodeId;

use crate::meta::{LabelSelector, ObjectMeta};

/// A service selecting ready pods by label.
#[derive(Clone, Debug)]
pub struct Service {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Pod selector.
    pub selector: LabelSelector,
}

/// One routable backend.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Endpoint {
    /// Node hosting the pod.
    pub node: NodeId,
    /// Pod serving port.
    pub port: u16,
}

/// The ready backends of a service (maintained by the endpoints
/// controller).
#[derive(Clone, Debug, Default)]
pub struct Endpoints {
    /// Service name these endpoints belong to.
    pub service: String,
    /// Ready backends, sorted for determinism.
    pub ready: Vec<Endpoint>,
}

/// Deterministic round-robin load balancer over an endpoints snapshot
/// (kube-proxy stand-in).
#[derive(Clone)]
pub struct RoundRobin {
    cursor: Rc<Cell<usize>>,
}

impl Default for RoundRobin {
    fn default() -> Self {
        Self::new()
    }
}

impl RoundRobin {
    /// Balancer starting at the first backend.
    pub fn new() -> Self {
        RoundRobin {
            cursor: Rc::new(Cell::new(0)),
        }
    }

    /// Pick the next backend from the snapshot, if any.
    pub fn pick(&self, endpoints: &Endpoints) -> Option<Endpoint> {
        if endpoints.ready.is_empty() {
            return None;
        }
        let i = self.cursor.get();
        self.cursor.set(i.wrapping_add(1));
        Some(endpoints.ready[i % endpoints.ready.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(n: usize) -> Endpoints {
        Endpoints {
            service: "s".into(),
            ready: (0..n)
                .map(|i| Endpoint {
                    node: NodeId(i),
                    port: 8080,
                })
                .collect(),
        }
    }

    #[test]
    fn round_robin_cycles() {
        let rr = RoundRobin::new();
        let e = eps(3);
        let picks: Vec<usize> = (0..6).map(|_| rr.pick(&e).unwrap().node.0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn empty_endpoints_yield_none() {
        let rr = RoundRobin::new();
        assert_eq!(rr.pick(&eps(0)), None);
    }

    #[test]
    fn cursor_survives_backend_changes() {
        let rr = RoundRobin::new();
        let three = eps(3);
        rr.pick(&three);
        rr.pick(&three);
        let two = eps(2);
        // Cursor keeps advancing; modulo applies to the new set.
        assert_eq!(rr.pick(&two).unwrap().node.0, 0);
        assert_eq!(rr.pick(&two).unwrap().node.0, 1);
    }
}
