//! The kubelet: per-node agent that turns scheduled pods into running
//! containers and finalizes deletions.
//!
//! Startup path: ensure image (pull if missing) → create container →
//! start → readiness delay → report Running/Ready. Deletion path: stop →
//! remove → finalize the API object. Both run as spawned tasks so one slow
//! pull never blocks other pods on the node.

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::rc::Rc;

use swf_simcore::{sleep, spawn};

use crate::api::ApiServer;
use crate::pod::{Pod, PodPhase};

use swf_container::{ContainerPhase, ContainerRuntime};

/// Kubelet parameters.
#[derive(Clone, Copy, Debug)]
pub struct KubeletConfig {
    /// First port handed to pods on this node.
    pub port_base: u16,
}

impl Default for KubeletConfig {
    fn default() -> Self {
        KubeletConfig { port_base: 30000 }
    }
}

/// The per-node kubelet.
#[derive(Clone)]
pub struct Kubelet {
    api: ApiServer,
    runtime: ContainerRuntime,
    next_port: Rc<Cell<u16>>,
    inflight: Rc<RefCell<BTreeSet<String>>>,
}

impl Kubelet {
    /// Kubelet for `runtime`'s node.
    pub fn new(api: ApiServer, runtime: ContainerRuntime, config: KubeletConfig) -> Self {
        Kubelet {
            api,
            runtime,
            next_port: Rc::new(Cell::new(config.port_base)),
            inflight: Rc::new(RefCell::new(BTreeSet::new())),
        }
    }

    /// The container runtime this kubelet drives.
    pub fn runtime(&self) -> &ContainerRuntime {
        &self.runtime
    }

    /// Run forever, reconciling pods bound to this node.
    pub async fn run(self) {
        let mut watcher = self.api.pods().watch();
        loop {
            self.reconcile();
            watcher.changed().await;
        }
    }

    /// One reconcile pass (non-blocking: work is spawned).
    pub fn reconcile(&self) {
        let my_node = self.runtime.node().id();
        let mine: Vec<Pod> = self.api.pods().filter(|p| p.status.node == Some(my_node));
        for pod in mine {
            let name = pod.meta.name.clone();
            if self.inflight.borrow().contains(&name) {
                continue;
            }
            if pod.meta.deletion_requested {
                self.inflight.borrow_mut().insert(name.clone());
                let this = self.clone();
                spawn(async move {
                    this.teardown(&name).await;
                    this.inflight.borrow_mut().remove(&name);
                });
            } else if pod.status.phase == PodPhase::Scheduled && self.api.node_ready(my_node) {
                self.inflight.borrow_mut().insert(name.clone());
                let this = self.clone();
                spawn(async move {
                    this.startup(&name).await;
                    this.inflight.borrow_mut().remove(&name);
                });
            }
        }
    }

    async fn startup(&self, name: &str) {
        let Some(pod) = self.api.pods().get(name) else {
            return;
        };
        let obs = swf_obs::current();
        let component = format!("{}/kubelet", self.runtime.node().name());
        // Root span for the pod's cold start; the activator links its
        // cold-wait span to it via the `pod/<name>` anchor.
        let boot = obs.span(
            swf_obs::SpanContext::NONE,
            &component,
            format!("pod-start:{name}"),
            swf_obs::Category::ColdStart,
        );
        obs.set_anchor(&format!("pod/{name}"), boot.ctx());
        let image = pod.spec.image.clone();
        let pull = obs.span(
            boot.ctx(),
            &component,
            format!("pull:{image}"),
            swf_obs::Category::Pull,
        );
        if let Err(e) = self.runtime.ensure_image(&image).await {
            self.fail(name, &format!("image pull failed: {e}"));
            return;
        }
        drop(pull);
        let create = obs.span(
            boot.ctx(),
            &component,
            format!("create:{name}"),
            swf_obs::Category::Create,
        );
        let container = match self.runtime.create(&image, pod.spec.resources).await {
            Ok(c) => c,
            Err(e) => {
                self.fail(name, &format!("create failed: {e}"));
                return;
            }
        };
        if let Err(e) = self.runtime.start(container).await {
            self.fail(name, &format!("start failed: {e}"));
            return;
        }
        drop(create);
        // Application boot before readiness.
        if !pod.spec.readiness_delay.is_zero() {
            sleep(pod.spec.readiness_delay).await;
        }
        // The pod may have been deleted — or failed over by the node
        // controller — while starting; never overwrite that state.
        let aborted = self
            .api
            .pods()
            .get(name)
            .map(|p| p.meta.deletion_requested || p.status.phase == PodPhase::Failed)
            .unwrap_or(true);
        if aborted {
            let _ = self.runtime.stop(container).await;
            let _ = self.runtime.remove(container).await;
            let still_deleting = self
                .api
                .pods()
                .get(name)
                .map(|p| p.meta.deletion_requested)
                .unwrap_or(false);
            if still_deleting {
                self.api.finalize_pod_delete(name);
            }
            return;
        }
        let port = if pod.spec.port != 0 {
            pod.spec.port
        } else {
            let p = self.next_port.get();
            self.next_port.set(p.wrapping_add(1).max(1024));
            p
        };
        obs.counter_add("k8s.pods_started", 1);
        self.api.pods().update(name, |p| {
            p.status.phase = PodPhase::Running;
            p.status.ready = true;
            p.status.container = Some(container);
            p.status.port = port;
        });
        if let Some(probe) = pod.spec.probe {
            let this = self.clone();
            let name = name.to_string();
            spawn(async move {
                this.probe_loop(&name, probe).await;
            });
        }
    }

    /// Periodic health probing of a running pod, living as long as the pod
    /// does. A crashed container first fails readiness (the pod drops out
    /// of routing), then liveness (the kubelet restarts the container in
    /// place, keeping the pod object, node binding and port).
    async fn probe_loop(&self, name: &str, probe: crate::probe::ProbeSpec) {
        let obs = swf_obs::current();
        let mut failures = 0u32;
        loop {
            sleep(probe.period).await;
            let Some(pod) = self.api.pods().get(name) else {
                return;
            };
            if pod.meta.deletion_requested || pod.status.phase != PodPhase::Running {
                return;
            }
            let healthy = pod
                .status
                .container
                .map(|c| matches!(self.runtime.phase(c), Ok(ContainerPhase::Running)))
                .unwrap_or(false);
            if healthy {
                failures = 0;
                if !pod.status.ready {
                    self.api.pods().update(name, |p| p.status.ready = true);
                }
                continue;
            }
            failures += 1;
            if failures == probe.unready_threshold && pod.status.ready {
                obs.counter_add("k8s.probe_unready", 1);
                self.api.pods().update(name, |p| p.status.ready = false);
            }
            if failures >= probe.failure_threshold {
                self.restart(name, &pod).await;
                failures = 0;
            }
        }
    }

    /// Liveness-triggered container restart: replace the backing container
    /// without touching the pod object. Marks the pod ready again once the
    /// new container passes its readiness delay.
    async fn restart(&self, name: &str, pod: &Pod) {
        let obs = swf_obs::current();
        let component = format!("{}/kubelet", self.runtime.node().name());
        let span = obs.span(
            swf_obs::SpanContext::NONE,
            &component,
            format!("pod-restart:{name}"),
            swf_obs::Category::ColdStart,
        );
        obs.counter_add("k8s.pod_restarts", 1);
        if let Some(old) = pod.status.container {
            if matches!(self.runtime.phase(old), Ok(ContainerPhase::Running)) {
                let _ = self.runtime.stop(old).await;
            }
            let _ = self.runtime.remove(old).await;
        }
        let container = match self
            .runtime
            .create(&pod.spec.image, pod.spec.resources)
            .await
        {
            Ok(c) => c,
            Err(e) => {
                self.fail(name, &format!("restart create failed: {e}"));
                return;
            }
        };
        if let Err(e) = self.runtime.start(container).await {
            self.fail(name, &format!("restart start failed: {e}"));
            return;
        }
        if !pod.spec.readiness_delay.is_zero() {
            sleep(pod.spec.readiness_delay).await;
        }
        drop(span);
        // The pod may have been deleted or failed over while restarting.
        let aborted = self
            .api
            .pods()
            .get(name)
            .map(|p| p.meta.deletion_requested || p.status.phase != PodPhase::Running)
            .unwrap_or(true);
        if aborted {
            let _ = self.runtime.stop(container).await;
            let _ = self.runtime.remove(container).await;
            return;
        }
        self.api.pods().update(name, |p| {
            p.status.ready = true;
            p.status.container = Some(container);
            p.status.restart_count += 1;
        });
    }

    async fn teardown(&self, name: &str) {
        let Some(pod) = self.api.pods().get(name) else {
            return;
        };
        if let Some(container) = pod.status.container {
            if matches!(self.runtime.phase(container), Ok(ContainerPhase::Running)) {
                let _ = self.runtime.stop(container).await;
            }
            let _ = self.runtime.remove(container).await;
        }
        self.api.finalize_pod_delete(name);
    }

    fn fail(&self, name: &str, message: &str) {
        self.api.pods().update(name, |p| {
            p.status.phase = PodPhase::Failed;
            p.status.ready = false;
            p.status.message = message.to_string();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ObjectMeta;
    use crate::pod::PodSpec;
    use swf_cluster::{mib, Node, NodeId, NodeSpec};
    use swf_container::{Image, ImageRef, OverheadModel, Registry, RegistryConfig, ResourceLimits};
    use swf_simcore::{millis, now, secs, Sim, SimDuration};

    fn setup() -> (ApiServer, Kubelet, Registry, ImageRef) {
        let api = ApiServer::default();
        let node = Node::new(NodeId(1), NodeSpec::default());
        let registry = Registry::new(RegistryConfig::default());
        let image = ImageRef::parse("fn:v1");
        registry.push(Image::single_layer(image.clone(), 1, mib(100)));
        let runtime = ContainerRuntime::new(node, registry.clone(), OverheadModel::default(), 3);
        let kubelet = Kubelet::new(api.clone(), runtime, KubeletConfig::default());
        (api, kubelet, registry, image)
    }

    fn scheduled_pod(name: &str, image: &ImageRef) -> Pod {
        let mut p = Pod::new(ObjectMeta::named(name), PodSpec::new(image.clone()));
        p.spec.node_name = Some(NodeId(1));
        p
    }

    #[test]
    fn scheduled_pod_becomes_running_and_ready() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, kubelet, _r, image) = setup();
            swf_simcore::spawn(kubelet.clone().run());
            api.create_pod(scheduled_pod("p", &image)).await.unwrap();
            sleep(secs(30.0)).await;
            let p = api.pods().get("p").unwrap();
            assert_eq!(p.status.phase, PodPhase::Running);
            assert!(p.status.ready);
            assert!(p.status.container.is_some());
            assert!(p.status.port >= 30000);
        });
    }

    #[test]
    fn readiness_delay_defers_ready() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, kubelet, registry, image) = setup();
            // Pre-pull so startup cost is only create+start+readiness.
            registry.pull(NodeId(1), &image).await.unwrap();
            swf_simcore::spawn(kubelet.clone().run());
            let mut pod = scheduled_pod("p", &image);
            pod.spec.readiness_delay = secs(1.0);
            let t0 = now();
            api.create_pod(pod).await.unwrap();
            // Wait until ready and measure.
            let mut w = api.pods().watch();
            loop {
                if api.pods().get("p").map(|p| p.status.ready).unwrap_or(false) {
                    break;
                }
                w.changed().await;
            }
            let startup = now() - t0;
            let m = OverheadModel::default();
            assert!(startup >= m.create + m.start + secs(1.0));
            assert!(startup < m.create + m.start + secs(1.0) + millis(20));
        });
    }

    #[test]
    fn deletion_tears_down_container_and_finalizes() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, kubelet, _r, image) = setup();
            swf_simcore::spawn(kubelet.clone().run());
            api.create_pod(scheduled_pod("p", &image)).await.unwrap();
            sleep(secs(30.0)).await;
            assert_eq!(kubelet.runtime().container_count(), 1);
            api.delete_pod("p").await.unwrap();
            sleep(secs(5.0)).await;
            assert!(api.pods().get("p").is_none());
            assert_eq!(kubelet.runtime().container_count(), 0);
        });
    }

    #[test]
    fn deletion_during_startup_cleans_up() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, kubelet, _r, image) = setup();
            swf_simcore::spawn(kubelet.clone().run());
            let mut pod = scheduled_pod("p", &image);
            pod.spec.readiness_delay = secs(10.0);
            api.create_pod(pod).await.unwrap();
            // Delete mid-boot (image pull + create take > 1ms).
            sleep(millis(500)).await;
            api.delete_pod("p").await.unwrap();
            sleep(secs(60.0)).await;
            assert!(api.pods().get("p").is_none());
            assert_eq!(kubelet.runtime().container_count(), 0);
        });
    }

    #[test]
    fn oom_pod_is_marked_failed() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, kubelet, _r, image) = setup();
            swf_simcore::spawn(kubelet.clone().run());
            let mut pod = scheduled_pod("p", &image);
            pod.spec.resources = ResourceLimits {
                cpu_millis: 1000,
                memory: swf_cluster::gib(64), // > node's 32 GiB
            };
            api.create_pod(pod).await.unwrap();
            sleep(secs(30.0)).await;
            let p = api.pods().get("p").unwrap();
            assert_eq!(p.status.phase, PodPhase::Failed);
            assert!(p.status.message.contains("create failed"));
        });
    }

    #[test]
    fn two_pods_get_distinct_ports() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, kubelet, _r, image) = setup();
            swf_simcore::spawn(kubelet.clone().run());
            api.create_pod(scheduled_pod("a", &image)).await.unwrap();
            api.create_pod(scheduled_pod("b", &image)).await.unwrap();
            sleep(secs(30.0)).await;
            let pa = api.pods().get("a").unwrap().status.port;
            let pb = api.pods().get("b").unwrap().status.port;
            assert_ne!(pa, pb);
        });
    }

    #[test]
    fn image_pull_failure_marks_failed() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, kubelet, _r, _image) = setup();
            swf_simcore::spawn(kubelet.clone().run());
            let ghost = ImageRef::parse("ghost:v0");
            api.create_pod(scheduled_pod("p", &ghost)).await.unwrap();
            sleep(secs(5.0)).await;
            let p = api.pods().get("p").unwrap();
            assert_eq!(p.status.phase, PodPhase::Failed);
            assert!(p.status.message.contains("image pull failed"));
        });
    }

    #[test]
    fn liveness_probe_restarts_a_crashed_container() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, kubelet, _r, image) = setup();
            swf_simcore::spawn(kubelet.clone().run());
            let mut pod = scheduled_pod("p", &image);
            pod.spec.probe = Some(crate::probe::ProbeSpec {
                period: secs(2.0),
                unready_threshold: 1,
                failure_threshold: 3,
            });
            api.create_pod(pod).await.unwrap();
            sleep(secs(30.0)).await;
            let before = api.pods().get("p").unwrap();
            assert!(before.status.ready);
            let old_container = before.status.container.unwrap();
            let old_port = before.status.port;

            kubelet.runtime().crash(old_container).unwrap();
            // One probe period in: readiness fails first, pulling the pod
            // out of routing before the liveness threshold restarts it.
            sleep(secs(3.0)).await;
            let mid = api.pods().get("p").unwrap();
            assert!(!mid.status.ready, "crashed pod must go unready first");
            assert_eq!(mid.status.restart_count, 0);

            sleep(secs(30.0)).await;
            let after = api.pods().get("p").unwrap();
            assert!(after.status.ready, "restart must restore readiness");
            assert_eq!(after.status.restart_count, 1);
            assert_ne!(after.status.container, Some(old_container));
            assert_eq!(after.status.port, old_port, "port survives the restart");
            assert_eq!(kubelet.runtime().container_count(), 1);
        });
    }

    #[test]
    fn probe_survives_repeated_crashes() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, kubelet, _r, image) = setup();
            swf_simcore::spawn(kubelet.clone().run());
            let mut pod = scheduled_pod("p", &image);
            pod.spec.probe = Some(crate::probe::ProbeSpec::default());
            api.create_pod(pod).await.unwrap();
            sleep(secs(30.0)).await;
            for round in 1..=3u32 {
                let c = api.pods().get("p").unwrap().status.container.unwrap();
                kubelet.runtime().crash(c).unwrap();
                sleep(secs(30.0)).await;
                let p = api.pods().get("p").unwrap();
                assert!(p.status.ready);
                assert_eq!(p.status.restart_count, round);
            }
        });
    }

    #[test]
    fn deleting_a_probed_pod_stops_the_probe_loop() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, kubelet, _r, image) = setup();
            swf_simcore::spawn(kubelet.clone().run());
            let mut pod = scheduled_pod("p", &image);
            pod.spec.probe = Some(crate::probe::ProbeSpec::default());
            api.create_pod(pod).await.unwrap();
            sleep(secs(30.0)).await;
            api.delete_pod("p").await.unwrap();
            sleep(secs(60.0)).await;
            assert!(api.pods().get("p").is_none());
            assert_eq!(kubelet.runtime().container_count(), 0);
        });
    }

    /// The check uses SimDuration to silence unused-import pedantry.
    #[test]
    fn config_default() {
        let _ = SimDuration::ZERO;
        assert_eq!(KubeletConfig::default().port_base, 30000);
    }
}
