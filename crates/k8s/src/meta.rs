//! Object metadata and label selectors.

use std::collections::BTreeMap;

/// Unique id assigned by the API server.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Uid(pub u64);

/// Metadata common to every API object.
#[derive(Clone, Debug, Default)]
pub struct ObjectMeta {
    /// Object name, unique per kind.
    pub name: String,
    /// Labels used by selectors.
    pub labels: BTreeMap<String, String>,
    /// Annotations (e.g. Knative autoscaling knobs).
    pub annotations: BTreeMap<String, String>,
    /// Server-assigned uid (0 until created).
    pub uid: Uid,
    /// Name of the controller object that owns this one, if any.
    pub owner: Option<String>,
    /// Set when deletion has been requested; object is torn down async.
    pub deletion_requested: bool,
}

impl ObjectMeta {
    /// Metadata with just a name.
    pub fn named(name: impl Into<String>) -> Self {
        ObjectMeta {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add one label (builder style).
    pub fn with_label(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.labels.insert(k.into(), v.into());
        self
    }

    /// Add one annotation (builder style).
    pub fn with_annotation(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.annotations.insert(k.into(), v.into());
        self
    }

    /// Set the owner (builder style).
    pub fn owned_by(mut self, owner: impl Into<String>) -> Self {
        self.owner = Some(owner.into());
        self
    }

    /// Read an annotation parsed as `T`.
    pub fn annotation<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.annotations.get(key).and_then(|v| v.parse().ok())
    }
}

/// An equality-based label selector (the subset Kubernetes controllers use).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LabelSelector {
    /// All of these key/value pairs must match.
    pub match_labels: BTreeMap<String, String>,
}

impl LabelSelector {
    /// Selector over one label.
    pub fn eq(k: impl Into<String>, v: impl Into<String>) -> Self {
        let mut match_labels = BTreeMap::new();
        match_labels.insert(k.into(), v.into());
        LabelSelector { match_labels }
    }

    /// Add another required pair.
    pub fn and(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.match_labels.insert(k.into(), v.into());
        self
    }

    /// Does `labels` satisfy this selector? An empty selector matches
    /// nothing (Kubernetes semantics for services without selectors differ,
    /// but controllers treat empty as non-selecting).
    pub fn matches(&self, labels: &BTreeMap<String, String>) -> bool {
        if self.match_labels.is_empty() {
            return false;
        }
        self.match_labels
            .iter()
            .all(|(k, v)| labels.get(k) == Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_annotation_parse() {
        let m = ObjectMeta::named("p")
            .with_label("app", "matmul")
            .with_annotation("autoscaling.knative.dev/min-scale", "3")
            .owned_by("rs-1");
        assert_eq!(m.name, "p");
        assert_eq!(m.labels["app"], "matmul");
        assert_eq!(
            m.annotation::<u32>("autoscaling.knative.dev/min-scale"),
            Some(3)
        );
        assert_eq!(m.annotation::<u32>("missing"), None);
        assert_eq!(m.owner.as_deref(), Some("rs-1"));
    }

    #[test]
    fn selector_matching() {
        let sel = LabelSelector::eq("app", "m").and("rev", "r1");
        let mut labels = BTreeMap::new();
        labels.insert("app".to_string(), "m".to_string());
        assert!(!sel.matches(&labels));
        labels.insert("rev".to_string(), "r1".to_string());
        assert!(sel.matches(&labels));
        labels.insert("extra".to_string(), "x".to_string());
        assert!(sel.matches(&labels));
    }

    #[test]
    fn empty_selector_matches_nothing() {
        let sel = LabelSelector::default();
        assert!(!sel.matches(&BTreeMap::new()));
    }
}
