//! Pods: the schedulable unit.

use swf_cluster::NodeId;
use swf_container::{ContainerId, ImageRef, ResourceLimits};
use swf_simcore::SimDuration;

use crate::meta::ObjectMeta;
use crate::probe::ProbeSpec;

/// Desired state of a pod.
#[derive(Clone, Debug)]
pub struct PodSpec {
    /// Container image to run.
    pub image: ImageRef,
    /// Resource requests/limits (requests == limits in this model).
    pub resources: ResourceLimits,
    /// Pin to a node (bypasses the scheduler when set at creation).
    pub node_name: Option<NodeId>,
    /// Extra application boot time after the container starts before the
    /// pod reports Ready (e.g. a Flask server importing NumPy).
    pub readiness_delay: SimDuration,
    /// TCP port the pod serves on (allocated by the kubelet when zero).
    pub port: u16,
    /// Health probe run by the kubelet once the pod is Running (`None` =
    /// no probing, the historical behaviour).
    pub probe: Option<ProbeSpec>,
}

impl PodSpec {
    /// Spec running `image` with default limits.
    pub fn new(image: ImageRef) -> Self {
        PodSpec {
            image,
            resources: ResourceLimits::default(),
            node_name: None,
            readiness_delay: SimDuration::ZERO,
            port: 0,
            probe: None,
        }
    }

    /// Set resources (builder style).
    pub fn with_resources(mut self, resources: ResourceLimits) -> Self {
        self.resources = resources;
        self
    }

    /// Set readiness delay (builder style).
    pub fn with_readiness_delay(mut self, d: SimDuration) -> Self {
        self.readiness_delay = d;
        self
    }

    /// Attach a health probe (builder style).
    pub fn with_probe(mut self, probe: ProbeSpec) -> Self {
        self.probe = Some(probe);
        self
    }
}

/// Observed lifecycle phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PodPhase {
    /// Accepted, not yet bound to a node.
    Pending,
    /// Bound; kubelet is pulling/creating.
    Scheduled,
    /// Container started.
    Running,
    /// Terminated successfully (not used by server pods).
    Succeeded,
    /// Terminated with failure.
    Failed,
}

/// Observed state of a pod.
#[derive(Clone, Debug)]
pub struct PodStatus {
    /// Current phase.
    pub phase: PodPhase,
    /// Node the pod is bound to.
    pub node: Option<NodeId>,
    /// Passed its readiness probe (routable).
    pub ready: bool,
    /// Backing container (set by the kubelet).
    pub container: Option<ContainerId>,
    /// Port the pod serves on (set by the kubelet).
    pub port: u16,
    /// Times the kubelet restarted the container after liveness failures.
    pub restart_count: u32,
    /// Failure/termination message.
    pub message: String,
}

impl Default for PodStatus {
    fn default() -> Self {
        PodStatus {
            phase: PodPhase::Pending,
            node: None,
            ready: false,
            container: None,
            port: 0,
            restart_count: 0,
            message: String::new(),
        }
    }
}

/// A pod object.
#[derive(Clone, Debug)]
pub struct Pod {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Desired state.
    pub spec: PodSpec,
    /// Observed state.
    pub status: PodStatus,
}

impl Pod {
    /// New pod in `Pending`.
    pub fn new(meta: ObjectMeta, spec: PodSpec) -> Self {
        Pod {
            meta,
            spec,
            status: PodStatus::default(),
        }
    }

    /// Routable: running, ready, not being deleted.
    pub fn is_routable(&self) -> bool {
        self.status.phase == PodPhase::Running && self.status.ready && !self.meta.deletion_requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_container::ImageRef;

    #[test]
    fn new_pod_is_pending_and_unroutable() {
        let p = Pod::new(
            ObjectMeta::named("p1"),
            PodSpec::new(ImageRef::parse("img")),
        );
        assert_eq!(p.status.phase, PodPhase::Pending);
        assert!(!p.is_routable());
    }

    #[test]
    fn routable_requires_ready_running_and_live() {
        let mut p = Pod::new(
            ObjectMeta::named("p1"),
            PodSpec::new(ImageRef::parse("img")),
        );
        p.status.phase = PodPhase::Running;
        assert!(!p.is_routable());
        p.status.ready = true;
        assert!(p.is_routable());
        p.meta.deletion_requested = true;
        assert!(!p.is_routable());
    }
}
