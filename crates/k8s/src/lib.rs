//! # swf-k8s
//!
//! Kubernetes-style orchestrator substrate for the *Serverless Computing for
//! Dynamic HPC Workflows* reproduction: an API server with versioned,
//! watchable object stores; a filter/score/bind scheduler with image-locality
//! scoring; per-node kubelets that pull images and drive container
//! lifecycles; Deployment/ReplicaSet controllers; and Services/Endpoints
//! with a deterministic round-robin balancer.
//!
//! The paper runs Kubernetes v1.30 under Knative; this crate reproduces the
//! control loops that matter to the paper's mechanisms — pod scale-up
//! latency, image pre-pull via scheduling locality, readiness gating — in
//! virtual time (see DESIGN.md for the substitution argument).

#![warn(missing_docs)]

pub mod api;
pub mod autoscaler;
pub mod control_plane;
pub mod controllers;
pub mod error;
pub mod kubelet;
pub mod meta;
pub mod nodes;
pub mod pod;
pub mod probe;
pub mod scheduler;
pub mod service;
pub mod store;
pub mod workload_api;

pub use api::{ApiConfig, ApiServer};
pub use autoscaler::{NodePoolAutoscaler, NodePoolConfig, ScaleListener};
pub use control_plane::{K8s, K8sConfig};
pub use controllers::{DeploymentController, EndpointsController, ReplicaSetController};
pub use error::K8sError;
pub use kubelet::{Kubelet, KubeletConfig};
pub use meta::{LabelSelector, ObjectMeta, Uid};
pub use nodes::{NodeController, NodeStatus};
pub use pod::{Pod, PodPhase, PodSpec, PodStatus};
pub use probe::ProbeSpec;
pub use scheduler::{NodeCapacity, Scheduler, SchedulerConfig};
pub use service::{Endpoint, Endpoints, RoundRobin, Service};
pub use store::{Store, Watcher};
pub use workload_api::{Deployment, PodTemplate, ReplicaSet};
