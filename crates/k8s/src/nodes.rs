//! Node objects and the node controller: failure detection and pod
//! fail-over.
//!
//! The simulation can kill a node (`K8s::fail_node`); the node controller
//! then marks every pod bound to it as Failed, which makes the ReplicaSet
//! controller replace them on healthy nodes and the endpoints controller
//! stop routing to them — Kubernetes' node-lifecycle behaviour collapsed
//! into one level-triggered loop.

use swf_cluster::NodeId;

use crate::api::ApiServer;
use crate::pod::PodPhase;

/// Observed state of a cluster node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeStatus {
    /// The node.
    pub id: NodeId,
    /// Ready to accept and run pods.
    pub ready: bool,
}

/// Reconciles pod state with node health.
pub struct NodeController {
    api: ApiServer,
}

impl NodeController {
    /// New controller.
    pub fn new(api: ApiServer) -> Self {
        NodeController { api }
    }

    /// Run forever.
    pub async fn run(self) {
        let mut nodes = self.api.nodes().watch();
        let mut pods = self.api.pods().watch();
        loop {
            self.reconcile();
            swf_simcore::race(nodes.changed(), pods.changed()).await;
        }
    }

    /// One pass: fail pods stranded on not-ready nodes.
    pub fn reconcile(&self) {
        let down: Vec<NodeId> = self
            .api
            .nodes()
            .list()
            .into_iter()
            .filter(|n| !n.ready)
            .map(|n| n.id)
            .collect();
        if down.is_empty() {
            return;
        }
        for (name, pod) in self.api.pods().entries() {
            let Some(node) = pod.status.node else {
                continue;
            };
            if !down.contains(&node) {
                continue;
            }
            if pod.status.phase != PodPhase::Failed {
                self.api.pods().update(&name, |p| {
                    p.status.phase = PodPhase::Failed;
                    p.status.ready = false;
                    p.status.message = format!("node {node} is not ready");
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ObjectMeta;
    use crate::pod::{Pod, PodSpec};
    use swf_container::ImageRef;
    use swf_simcore::{secs, sleep, spawn, Sim};

    #[test]
    fn pods_on_failed_nodes_are_marked_failed() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            api.nodes().put(
                "node-1",
                NodeStatus {
                    id: NodeId(1),
                    ready: true,
                },
            );
            spawn(NodeController::new(api.clone()).run());
            let mut pod = Pod::new(ObjectMeta::named("p"), PodSpec::new(ImageRef::parse("i")));
            pod.spec.node_name = Some(NodeId(1));
            api.create_pod(pod).await.unwrap();
            api.pods().update("p", |p| {
                p.status.phase = PodPhase::Running;
                p.status.ready = true;
            });
            sleep(secs(0.1)).await;
            assert_eq!(api.pods().get("p").unwrap().status.phase, PodPhase::Running);
            // Node goes down.
            api.nodes().update("node-1", |n| n.ready = false);
            sleep(secs(0.1)).await;
            let p = api.pods().get("p").unwrap();
            assert_eq!(p.status.phase, PodPhase::Failed);
            assert!(p.status.message.contains("not ready"));
        });
    }

    #[test]
    fn healthy_nodes_are_untouched() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            api.nodes().put(
                "node-1",
                NodeStatus {
                    id: NodeId(1),
                    ready: true,
                },
            );
            api.nodes().put(
                "node-2",
                NodeStatus {
                    id: NodeId(2),
                    ready: false,
                },
            );
            spawn(NodeController::new(api.clone()).run());
            let mut pod = Pod::new(ObjectMeta::named("p"), PodSpec::new(ImageRef::parse("i")));
            pod.spec.node_name = Some(NodeId(1));
            api.create_pod(pod).await.unwrap();
            api.pods()
                .update("p", |p| p.status.phase = PodPhase::Running);
            sleep(secs(0.1)).await;
            assert_eq!(api.pods().get("p").unwrap().status.phase, PodPhase::Running);
        });
    }
}
