//! The pod scheduler: filter → score → bind.
//!
//! Filtering checks CPU-millis and memory fit against what is already bound
//! to each node; scoring prefers nodes that already cache the pod's image
//! (the locality effect behind Knative's `min-scale` pre-staging) and, as a
//! tiebreak, the least-allocated node. Binding is watch-driven: any pod
//! store change reruns the scheduling pass.

use std::collections::BTreeMap;

use swf_cluster::NodeId;
use swf_container::Registry;
use swf_simcore::{sleep, SimDuration};

use crate::api::ApiServer;
use crate::pod::{Pod, PodPhase};

/// Scheduler parameters.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Latency of one bind operation.
    pub bind_latency: SimDuration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            bind_latency: SimDuration::from_millis(5),
        }
    }
}

/// Allocatable capacity of one schedulable node.
#[derive(Clone, Copy, Debug)]
pub struct NodeCapacity {
    /// Node id.
    pub node: NodeId,
    /// CPU capacity in millicores.
    pub cpu_millis: u64,
    /// Memory capacity in bytes.
    pub memory: u64,
}

/// The scheduler control loop.
pub struct Scheduler {
    api: ApiServer,
    registry: Registry,
    nodes: Vec<NodeCapacity>,
    config: SchedulerConfig,
}

impl Scheduler {
    /// Build a scheduler over the given nodes.
    pub fn new(
        api: ApiServer,
        registry: Registry,
        nodes: Vec<NodeCapacity>,
        config: SchedulerConfig,
    ) -> Self {
        Scheduler {
            api,
            registry,
            nodes,
            config,
        }
    }

    /// Run forever, binding pods as they appear (and re-trying when node
    /// health changes).
    pub async fn run(self) {
        let mut pods = self.api.pods().watch();
        let mut nodes = self.api.nodes().watch();
        loop {
            self.schedule_pass().await;
            swf_simcore::race(pods.changed(), nodes.changed()).await;
        }
    }

    /// One pass: bind every currently pending pod it can.
    pub async fn schedule_pass(&self) {
        loop {
            let pending: Vec<Pod> = self.api.pods().filter(|p| {
                p.status.phase == PodPhase::Pending
                    && p.status.node.is_none()
                    && !p.meta.deletion_requested
            });
            if pending.is_empty() {
                return;
            }
            let mut bound_any = false;
            for pod in pending {
                if let Some(node) = self.pick_node(&pod) {
                    sleep(self.config.bind_latency).await;
                    // Re-check the pod still wants scheduling (it may have
                    // been deleted while we slept).
                    let still_pending = self
                        .api
                        .pods()
                        .get(&pod.meta.name)
                        .map(|p| p.status.phase == PodPhase::Pending && !p.meta.deletion_requested)
                        .unwrap_or(false);
                    if still_pending {
                        self.api.pods().update(&pod.meta.name, |p| {
                            p.status.node = Some(node);
                            p.status.phase = PodPhase::Scheduled;
                            p.status.message.clear();
                        });
                        bound_any = true;
                    }
                } else if pod.status.message.is_empty() {
                    // Write-on-change only: rewriting the same message every
                    // pass would re-trigger our own watch forever.
                    self.api.pods().update(&pod.meta.name, |p| {
                        p.status.message = "0 nodes available: insufficient resources".into();
                    });
                }
            }
            if !bound_any {
                return;
            }
            // Binding may have made room decisions stale; loop to re-list.
        }
    }

    /// Millicores and memory already committed per node. Keyed by node id
    /// in a `BTreeMap` so any future iteration is ordered (D2 of the
    /// determinism contract): the scheduler's scoring must never depend on
    /// hasher state.
    fn committed(&self) -> BTreeMap<NodeId, (u64, u64)> {
        let mut used: BTreeMap<NodeId, (u64, u64)> = BTreeMap::new();
        for p in self.api.pods().list() {
            if let Some(n) = p.status.node {
                if p.status.phase != PodPhase::Succeeded && p.status.phase != PodPhase::Failed {
                    let e = used.entry(n).or_default();
                    e.0 += u64::from(p.spec.resources.cpu_millis);
                    e.1 += p.spec.resources.memory;
                }
            }
        }
        used
    }

    /// Filter + score; returns the chosen node.
    fn pick_node(&self, pod: &Pod) -> Option<NodeId> {
        let used = self.committed();
        let mut best: Option<(i64, NodeId)> = None;
        for cap in &self.nodes {
            if !self.api.node_ready(cap.node) {
                continue;
            }
            let (cpu_used, mem_used) = used.get(&cap.node).copied().unwrap_or((0, 0));
            let cpu_req = u64::from(pod.spec.resources.cpu_millis);
            let mem_req = pod.spec.resources.memory;
            if cpu_used + cpu_req > cap.cpu_millis || mem_used + mem_req > cap.memory {
                continue;
            }
            let locality = if self.registry.is_cached(cap.node, &pod.spec.image) {
                1_000_000i64
            } else {
                0
            };
            // Least-allocated: prefer more free millicores.
            let free = (cap.cpu_millis - cpu_used - cpu_req) as i64;
            let score = locality + free;
            // Stable tie-break on node id keeps runs deterministic.
            if best.is_none_or(|(s, n)| score > s || (score == s && cap.node < n)) {
                best = Some((score, cap.node));
            }
        }
        best.map(|(_, n)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ObjectMeta;
    use crate::pod::PodSpec;
    use swf_container::{Image, ImageRef, RegistryConfig, ResourceLimits};
    use swf_simcore::{spawn, Sim};

    fn capacities(n: usize) -> Vec<NodeCapacity> {
        (1..=n)
            .map(|i| NodeCapacity {
                node: NodeId(i),
                cpu_millis: 8000,
                memory: swf_cluster::gib(32),
            })
            .collect()
    }

    fn mk_pod(name: &str, cpu: u32) -> Pod {
        Pod::new(
            ObjectMeta::named(name),
            PodSpec::new(ImageRef::parse("img")).with_resources(ResourceLimits {
                cpu_millis: cpu,
                memory: swf_cluster::mib(256),
            }),
        )
    }

    fn setup(nodes: usize) -> (ApiServer, Registry, Scheduler) {
        let api = ApiServer::default();
        let registry = Registry::new(RegistryConfig::default());
        registry.push(Image::single_layer(
            ImageRef::parse("img"),
            1,
            swf_cluster::mib(10),
        ));
        let sched = Scheduler::new(
            api.clone(),
            registry.clone(),
            capacities(nodes),
            SchedulerConfig::default(),
        );
        (api, registry, sched)
    }

    #[test]
    fn binds_pending_pod_to_least_allocated() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, _reg, sched) = setup(2);
            spawn(sched.run());
            api.create_pod(mk_pod("p1", 1000)).await.unwrap();
            swf_simcore::sleep(swf_simcore::millis(50)).await;
            let p = api.pods().get("p1").unwrap();
            assert_eq!(p.status.phase, PodPhase::Scheduled);
            assert_eq!(p.status.node, Some(NodeId(1)));
            // Second pod spreads to node 2 (least allocated).
            api.create_pod(mk_pod("p2", 1000)).await.unwrap();
            swf_simcore::sleep(swf_simcore::millis(50)).await;
            let p2 = api.pods().get("p2").unwrap();
            assert_eq!(p2.status.node, Some(NodeId(2)));
        });
    }

    #[test]
    fn image_locality_wins_over_spread() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, reg, sched) = setup(2);
            // Cache the image on node 2 only.
            reg.pull(NodeId(2), &ImageRef::parse("img")).await.unwrap();
            spawn(sched.run());
            api.create_pod(mk_pod("p1", 1000)).await.unwrap();
            swf_simcore::sleep(swf_simcore::millis(50)).await;
            assert_eq!(api.pods().get("p1").unwrap().status.node, Some(NodeId(2)));
        });
    }

    #[test]
    fn resource_exhaustion_leaves_pod_pending_until_space() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, _reg, sched) = setup(1);
            spawn(sched.run());
            api.create_pod(mk_pod("big1", 8000)).await.unwrap();
            api.create_pod(mk_pod("big2", 8000)).await.unwrap();
            swf_simcore::sleep(swf_simcore::millis(50)).await;
            let p2 = api.pods().get("big2").unwrap();
            assert_eq!(p2.status.phase, PodPhase::Pending);
            assert!(p2.status.message.contains("insufficient"));
            // Free the first pod (simulate completion + deletion).
            api.pods().delete("big1");
            swf_simcore::sleep(swf_simcore::millis(50)).await;
            assert_eq!(
                api.pods().get("big2").unwrap().status.phase,
                PodPhase::Scheduled
            );
        });
    }

    #[test]
    fn never_overcommits_a_node() {
        let sim = Sim::new();
        sim.block_on(async {
            let (api, _reg, sched) = setup(2);
            spawn(sched.run());
            // 5 pods of 4000m over 2×8000m nodes: only 4 fit.
            for i in 0..5 {
                api.create_pod(mk_pod(&format!("p{i}"), 4000))
                    .await
                    .unwrap();
            }
            swf_simcore::sleep(swf_simcore::millis(100)).await;
            let pods = api.pods().list();
            let mut per_node: BTreeMap<NodeId, u64> = BTreeMap::new();
            let mut pending = 0;
            for p in &pods {
                match p.status.node {
                    Some(n) => *per_node.entry(n).or_default() += 4000,
                    None => pending += 1,
                }
            }
            assert_eq!(pending, 1);
            for (_, cpu) in per_node {
                assert!(cpu <= 8000);
            }
        });
    }
}
