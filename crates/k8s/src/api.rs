//! The API server: typed, watchable object stores plus admission
//! (uid allocation, duplicate rejection) and a modelled call latency.

use std::cell::Cell;
use std::rc::Rc;

use swf_simcore::{sleep, SimDuration};

use crate::error::K8sError;
use crate::meta::Uid;
use crate::nodes::NodeStatus;
use crate::pod::Pod;
use crate::service::{Endpoints, Service};
use crate::store::Store;
use crate::workload_api::{Deployment, ReplicaSet};

/// API server parameters.
#[derive(Clone, Copy, Debug)]
pub struct ApiConfig {
    /// Latency charged to each mutating API call.
    pub call_latency: SimDuration,
}

impl Default for ApiConfig {
    fn default() -> Self {
        ApiConfig {
            call_latency: SimDuration::from_micros(500),
        }
    }
}

/// The API server.
#[derive(Clone)]
pub struct ApiServer {
    config: ApiConfig,
    pods: Store<Pod>,
    replicasets: Store<ReplicaSet>,
    deployments: Store<Deployment>,
    services: Store<Service>,
    endpoints: Store<Endpoints>,
    nodes: Store<NodeStatus>,
    next_uid: Rc<Cell<u64>>,
}

impl Default for ApiServer {
    fn default() -> Self {
        Self::new(ApiConfig::default())
    }
}

impl ApiServer {
    /// Fresh API server.
    pub fn new(config: ApiConfig) -> Self {
        ApiServer {
            config,
            pods: Store::new(),
            replicasets: Store::new(),
            deployments: Store::new(),
            services: Store::new(),
            endpoints: Store::new(),
            nodes: Store::new(),
            next_uid: Rc::new(Cell::new(1)),
        }
    }

    fn alloc_uid(&self) -> Uid {
        let u = self.next_uid.get();
        self.next_uid.set(u + 1);
        Uid(u)
    }

    async fn charge(&self) {
        sleep(self.config.call_latency).await;
    }

    /// Pod store (reads and watches are informer-cache-free of latency).
    pub fn pods(&self) -> &Store<Pod> {
        &self.pods
    }

    /// ReplicaSet store.
    pub fn replicasets(&self) -> &Store<ReplicaSet> {
        &self.replicasets
    }

    /// Deployment store.
    pub fn deployments(&self) -> &Store<Deployment> {
        &self.deployments
    }

    /// Service store.
    pub fn services(&self) -> &Store<Service> {
        &self.services
    }

    /// Endpoints store.
    pub fn endpoints(&self) -> &Store<Endpoints> {
        &self.endpoints
    }

    /// Node status store.
    pub fn nodes(&self) -> &Store<NodeStatus> {
        &self.nodes
    }

    /// Is the node ready? Nodes never registered count as ready so
    /// components work in partial test setups without a node store.
    pub fn node_ready(&self, id: swf_cluster::NodeId) -> bool {
        self.nodes
            .list()
            .iter()
            .find(|n| n.id == id)
            .map(|n| n.ready)
            .unwrap_or(true)
    }

    /// Create a pod; rejects duplicates; assigns a uid.
    pub async fn create_pod(&self, mut pod: Pod) -> Result<Uid, K8sError> {
        self.charge().await;
        if self.pods.contains(&pod.meta.name) {
            return Err(K8sError::AlreadyExists(pod.meta.name));
        }
        let uid = self.alloc_uid();
        pod.meta.uid = uid;
        // A pre-pinned pod skips the scheduler.
        if let Some(node) = pod.spec.node_name {
            pod.status.node = Some(node);
            pod.status.phase = crate::pod::PodPhase::Scheduled;
        }
        self.pods.put(pod.meta.name.clone(), pod);
        Ok(uid)
    }

    /// Request graceful deletion of a pod (kubelet finalizes).
    pub async fn delete_pod(&self, name: &str) -> Result<(), K8sError> {
        self.charge().await;
        // A pod the kubelet never touched (still Pending, no node) can be
        // removed immediately.
        let finalize_now = {
            match self.pods.get(name) {
                None => return Err(K8sError::NotFound(name.to_string())),
                Some(p) => p.status.node.is_none(),
            }
        };
        if finalize_now {
            self.pods.delete(name);
        } else {
            self.pods.update(name, |p| p.meta.deletion_requested = true);
        }
        Ok(())
    }

    /// Finalize: remove the pod object entirely (kubelet-only).
    pub(crate) fn finalize_pod_delete(&self, name: &str) {
        self.pods.delete(name);
    }

    /// Create a deployment.
    pub async fn create_deployment(&self, d: Deployment) -> Result<(), K8sError> {
        self.charge().await;
        if self.deployments.contains(&d.meta.name) {
            return Err(K8sError::AlreadyExists(d.meta.name));
        }
        self.deployments.put(d.meta.name.clone(), d);
        Ok(())
    }

    /// Scale a deployment.
    pub async fn scale_deployment(&self, name: &str, replicas: u32) -> Result<(), K8sError> {
        self.charge().await;
        self.deployments
            .update(name, |d| d.replicas = replicas)
            .ok_or_else(|| K8sError::NotFound(name.to_string()))
    }

    /// Delete a deployment (controllers cascade).
    pub async fn delete_deployment(&self, name: &str) -> Result<(), K8sError> {
        self.charge().await;
        self.deployments
            .delete(name)
            .map(|_| ())
            .ok_or_else(|| K8sError::NotFound(name.to_string()))
    }

    /// Create a service (its endpoints object appears immediately, empty).
    pub async fn create_service(&self, s: Service) -> Result<(), K8sError> {
        self.charge().await;
        if self.services.contains(&s.meta.name) {
            return Err(K8sError::AlreadyExists(s.meta.name));
        }
        self.endpoints.put(
            s.meta.name.clone(),
            Endpoints {
                service: s.meta.name.clone(),
                ready: Vec::new(),
            },
        );
        self.services.put(s.meta.name.clone(), s);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ObjectMeta;
    use crate::pod::{PodPhase, PodSpec};
    use swf_cluster::NodeId;
    use swf_container::ImageRef;
    use swf_simcore::{now, Sim, SimTime};

    fn pod(name: &str) -> Pod {
        Pod::new(
            ObjectMeta::named(name),
            PodSpec::new(ImageRef::parse("img")),
        )
    }

    #[test]
    fn create_pod_assigns_uid_and_charges_latency() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            let u1 = api.create_pod(pod("a")).await.unwrap();
            let u2 = api.create_pod(pod("b")).await.unwrap();
            assert_ne!(u1, u2);
            assert!(now() > SimTime::ZERO);
        });
    }

    #[test]
    fn duplicate_pod_rejected() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            api.create_pod(pod("a")).await.unwrap();
            assert!(matches!(
                api.create_pod(pod("a")).await,
                Err(K8sError::AlreadyExists(_))
            ));
        });
    }

    #[test]
    fn prepinned_pod_skips_scheduler() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            let mut p = pod("pinned");
            p.spec.node_name = Some(NodeId(2));
            api.create_pod(p).await.unwrap();
            let got = api.pods().get("pinned").unwrap();
            assert_eq!(got.status.node, Some(NodeId(2)));
            assert_eq!(got.status.phase, PodPhase::Scheduled);
        });
    }

    #[test]
    fn delete_unscheduled_pod_is_immediate() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            api.create_pod(pod("a")).await.unwrap();
            api.delete_pod("a").await.unwrap();
            assert!(api.pods().get("a").is_none());
            assert!(matches!(
                api.delete_pod("a").await,
                Err(K8sError::NotFound(_))
            ));
        });
    }

    #[test]
    fn delete_scheduled_pod_marks_for_teardown() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            let mut p = pod("a");
            p.spec.node_name = Some(NodeId(1));
            api.create_pod(p).await.unwrap();
            api.delete_pod("a").await.unwrap();
            let got = api.pods().get("a").unwrap();
            assert!(got.meta.deletion_requested);
        });
    }

    #[test]
    fn service_creation_seeds_empty_endpoints() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            api.create_service(Service {
                meta: ObjectMeta::named("svc"),
                selector: crate::meta::LabelSelector::eq("app", "x"),
            })
            .await
            .unwrap();
            let eps = api.endpoints().get("svc").unwrap();
            assert!(eps.ready.is_empty());
        });
    }

    #[test]
    fn scale_missing_deployment_errors() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            assert!(matches!(
                api.scale_deployment("ghost", 3).await,
                Err(K8sError::NotFound(_))
            ));
        });
    }
}
