//! Control-plane assembly: wires API server, scheduler, controllers and one
//! kubelet per schedulable node over a [`swf_cluster::Cluster`].

use std::collections::BTreeMap;
use std::rc::Rc;

use swf_cluster::{Cluster, NodeId};
use swf_container::{ContainerRuntime, OverheadModel, Registry};
use swf_simcore::{millis, sleep, spawn, timeout, Elapsed, SimDuration};

use crate::api::{ApiConfig, ApiServer};
use crate::error::K8sError;
use crate::kubelet::{Kubelet, KubeletConfig};
use crate::pod::PodPhase;
use crate::scheduler::{NodeCapacity, Scheduler, SchedulerConfig};

/// Whole-control-plane configuration.
#[derive(Clone, Debug, Default)]
pub struct K8sConfig {
    /// API server parameters.
    pub api: ApiConfig,
    /// Scheduler parameters.
    pub scheduler: SchedulerConfig,
    /// Container lifecycle overheads used by every node runtime.
    pub overheads: OverheadModel,
    /// Nodes pods may run on; `None` = all worker nodes of the cluster.
    pub schedulable_nodes: Option<Vec<NodeId>>,
}

/// A running control plane.
#[derive(Clone)]
pub struct K8s {
    api: ApiServer,
    registry: Registry,
    runtimes: Rc<BTreeMap<NodeId, ContainerRuntime>>,
}

impl K8s {
    /// Start the control plane: spawns the scheduler, the deployment /
    /// replicaset / endpoints controllers and one kubelet per schedulable
    /// node. Returns a handle for API access.
    pub fn start(cluster: &Cluster, registry: Registry, config: K8sConfig, seed: u64) -> K8s {
        let api = ApiServer::new(config.api);
        // Resolve the schedulable set once; node ids in the config that
        // don't exist in the cluster are ignored rather than panicking.
        let schedulable: Vec<_> = config
            .schedulable_nodes
            .clone()
            .unwrap_or_else(|| cluster.worker_nodes().iter().map(|n| n.id()).collect())
            .into_iter()
            .filter_map(|id| cluster.node(id).ok().map(|n| (id, n.clone())))
            .collect();

        let mut runtimes = BTreeMap::new();
        for (node_id, node) in &schedulable {
            let runtime = ContainerRuntime::new(
                node.clone(),
                registry.clone(),
                config.overheads,
                seed ^ node_id.0 as u64,
            );
            runtimes.insert(*node_id, runtime.clone());
            let kubelet = Kubelet::new(api.clone(), runtime, KubeletConfig::default());
            spawn(kubelet.run());
        }

        let capacities: Vec<NodeCapacity> = schedulable
            .iter()
            .map(|(id, node)| NodeCapacity {
                node: *id,
                cpu_millis: node.cores().capacity() as u64 * 1000,
                memory: node.memory().capacity(),
            })
            .collect();
        // Register node objects (all ready at boot).
        for &(id, _) in &schedulable {
            api.nodes()
                .put(id.to_string(), crate::nodes::NodeStatus { id, ready: true });
        }
        spawn(Scheduler::new(api.clone(), registry.clone(), capacities, config.scheduler).run());
        spawn(crate::controllers::DeploymentController::new(api.clone()).run());
        spawn(crate::controllers::ReplicaSetController::new(api.clone()).run());
        spawn(crate::controllers::EndpointsController::new(api.clone()).run());
        spawn(crate::nodes::NodeController::new(api.clone()).run());

        K8s {
            api,
            registry,
            runtimes: Rc::new(runtimes),
        }
    }

    /// The API server handle.
    pub fn api(&self) -> &ApiServer {
        &self.api
    }

    /// The image registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The container runtime of a schedulable node (used by serverless
    /// data-plane components to exec workloads inside pod containers).
    pub fn runtime(&self, node: NodeId) -> Option<&ContainerRuntime> {
        self.runtimes.get(&node)
    }

    /// Nodes with kubelets, in ascending node-id order (`BTreeMap` keys
    /// iterate sorted, so no explicit sort is needed).
    pub fn schedulable_nodes(&self) -> Vec<NodeId> {
        self.runtimes.keys().copied().collect()
    }

    /// Wait until `pod` is Running and Ready (polls the watch stream).
    pub async fn wait_pod_ready(&self, name: &str, deadline: SimDuration) -> Result<(), K8sError> {
        let api = self.api.clone();
        let name_owned = name.to_string();
        let wait = async move {
            let mut w = api.pods().watch();
            loop {
                match api.pods().get(&name_owned) {
                    Some(p) if p.is_routable() => return Ok(()),
                    Some(p) if p.status.phase == PodPhase::Failed => {
                        return Err(K8sError::Runtime(p.status.message));
                    }
                    Some(_) => {}
                    None => return Err(K8sError::NotFound(name_owned.clone())),
                }
                w.changed().await;
            }
        };
        match timeout(deadline, wait).await {
            Ok(r) => r,
            Err(Elapsed) => Err(K8sError::Timeout(format!("pod {name} not ready"))),
        }
    }

    /// Wait until a service has at least `n` ready endpoints.
    pub async fn wait_endpoints(
        &self,
        service: &str,
        n: usize,
        deadline: SimDuration,
    ) -> Result<(), K8sError> {
        let api = self.api.clone();
        let svc = service.to_string();
        let wait = async move {
            let mut w = api.endpoints().watch();
            loop {
                if api
                    .endpoints()
                    .get(&svc)
                    .map(|e| e.ready.len() >= n)
                    .unwrap_or(false)
                {
                    return;
                }
                w.changed().await;
            }
        };
        match timeout(deadline, wait).await {
            Ok(()) => Ok(()),
            Err(Elapsed) => Err(K8sError::Timeout(format!(
                "service {service} did not reach {n} endpoints"
            ))),
        }
    }

    /// Convenience: sleep a beat so controllers settle (tests only).
    pub async fn settle(&self) {
        sleep(millis(100)).await;
    }

    /// Failure injection: mark a node not ready. The node controller fails
    /// its pods; ReplicaSets replace them on healthy nodes; the scheduler
    /// stops binding there.
    pub fn fail_node(&self, id: NodeId) {
        self.api
            .nodes()
            .update(&id.to_string(), |n| n.ready = false);
    }

    /// Bring a failed node back: the scheduler may bind to it again.
    pub fn recover_node(&self, id: NodeId) {
        self.api.nodes().update(&id.to_string(), |n| n.ready = true);
    }

    /// Is the node currently ready?
    pub fn node_is_ready(&self, id: NodeId) -> bool {
        self.api.node_ready(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{LabelSelector, ObjectMeta};
    use crate::pod::PodSpec;
    use crate::service::Service;
    use crate::workload_api::{Deployment, PodTemplate};
    use swf_cluster::{mib, ClusterConfig};
    use swf_container::{Image, ImageRef, RegistryConfig};
    use swf_simcore::{secs, Sim};

    fn boot() -> (Cluster, K8s, ImageRef) {
        let cluster = Cluster::new(&ClusterConfig::default());
        let registry = Registry::new(RegistryConfig::default());
        let image = ImageRef::parse("fn:v1");
        registry.push(Image::python_scientific(image.clone(), 1));
        let k8s = K8s::start(&cluster, registry, K8sConfig::default(), 42);
        (cluster, k8s, image)
    }

    #[test]
    fn deployment_end_to_end_pods_run_on_workers() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, k8s, image) = boot();
            k8s.api()
                .create_deployment(Deployment::new(
                    ObjectMeta::named("fn"),
                    3,
                    LabelSelector::eq("app", "fn"),
                    PodTemplate {
                        meta: ObjectMeta::default().with_label("app", "fn"),
                        spec: PodSpec::new(image.clone()),
                    },
                ))
                .await
                .unwrap();
            k8s.api()
                .create_service(Service {
                    meta: ObjectMeta::named("fn"),
                    selector: LabelSelector::eq("app", "fn"),
                })
                .await
                .unwrap();
            k8s.wait_endpoints("fn", 3, secs(120.0)).await.unwrap();
            let eps = k8s.api().endpoints().get("fn").unwrap();
            assert_eq!(eps.ready.len(), 3);
            // All on worker nodes (1..=3), spread by least-allocated.
            for e in &eps.ready {
                assert!(e.node.0 >= 1 && e.node.0 <= 3);
            }
            // Containers exist on the nodes.
            let total: usize = k8s
                .schedulable_nodes()
                .iter()
                .map(|n| k8s.runtime(*n).unwrap().container_count())
                .sum();
            assert_eq!(total, 3);
        });
    }

    #[test]
    fn scale_to_zero_removes_containers() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, k8s, image) = boot();
            k8s.api()
                .create_deployment(Deployment::new(
                    ObjectMeta::named("fn"),
                    2,
                    LabelSelector::eq("app", "fn"),
                    PodTemplate {
                        meta: ObjectMeta::default().with_label("app", "fn"),
                        spec: PodSpec::new(image.clone()),
                    },
                ))
                .await
                .unwrap();
            k8s.api()
                .create_service(Service {
                    meta: ObjectMeta::named("fn"),
                    selector: LabelSelector::eq("app", "fn"),
                })
                .await
                .unwrap();
            k8s.wait_endpoints("fn", 2, secs(120.0)).await.unwrap();
            k8s.api().scale_deployment("fn", 0).await.unwrap();
            sleep(secs(10.0)).await;
            let total: usize = k8s
                .schedulable_nodes()
                .iter()
                .map(|n| k8s.runtime(*n).unwrap().container_count())
                .sum();
            assert_eq!(total, 0);
            assert!(k8s.api().endpoints().get("fn").unwrap().ready.is_empty());
        });
    }

    #[test]
    fn wait_pod_ready_times_out_for_unschedulable() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, k8s, image) = boot();
            let mut pod = crate::pod::Pod::new(
                ObjectMeta::named("huge"),
                PodSpec::new(image).with_resources(swf_container::ResourceLimits {
                    cpu_millis: 64_000,
                    memory: mib(1),
                }),
            );
            pod.spec.node_name = None;
            k8s.api().create_pod(pod).await.unwrap();
            let r = k8s.wait_pod_ready("huge", secs(5.0)).await;
            assert!(matches!(r, Err(K8sError::Timeout(_))));
        });
    }
}
