//! ML training: partition → featurize → train (one shard per data slice)
//! → merge. The shard count is decided at runtime from the row count of
//! the partitioned dataset, so a bigger training set expands into a wider
//! DAG under the exact same plan.
//!
//! The kernels are integer least-squares in Q47.16 fixed point: per-shard
//! training computes `w_j = (Σ x_j·y << 16) / (Σ x_j² + 1)` over the
//! centered shard features; the merge averages the shard weights. All
//! arithmetic is i64 with truncating division — bitwise identical across
//! native, container and serverless venues.

use bytes::Bytes;

use swf_pegasus::{AbstractJob, Transformation};
use swf_simcore::DetRng;
use swf_workloads::ExecEnv;

use crate::dynamic::{DynamicJob, DynamicWorkflow, Expansion, TriggerOn};
use crate::records::{
    decode_i64s, decode_params, decode_samples, encode_i64s, encode_params, encode_samples,
    SampleSet, FIXED_POINT,
};
use crate::{calibrated, AppSpec};

/// ML training workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct MlTrainParams {
    /// Rows in the training set (the input-size knob).
    pub rows: usize,
    /// Features per row.
    pub feats: usize,
    /// Rows per training shard.
    pub rows_per_shard: usize,
    /// Venue every job runs in.
    pub env: ExecEnv,
}

/// Quick scale: 4 training shards.
pub fn quick(env: ExecEnv) -> MlTrainParams {
    MlTrainParams {
        rows: 96,
        feats: 6,
        rows_per_shard: 24,
        env,
    }
}

/// Paper scale: 16 shards.
pub fn paper(env: ExecEnv) -> MlTrainParams {
    MlTrainParams {
        rows: 2_000,
        feats: 12,
        rows_per_shard: 125,
        env,
    }
}

const DATASET: &str = "mlt/dataset.rec";
const CLEAN: &str = "mlt/clean.rec";
const MODEL: &str = "mlt/model.rec";

fn feat_file(shard: usize) -> String {
    format!("mlt/feat_{shard:03}.rec")
}

fn weights_file(shard: usize) -> String {
    format!("mlt/weights_{shard:03}.rec")
}

fn param_file(shard: usize) -> String {
    format!("mlt/shard_{shard:03}.param")
}

/// Generate a labelled dataset: features in [-100, 100], labels a noisy
/// linear function of hidden integer weights.
pub fn generate_dataset(params: &MlTrainParams, seed: u64) -> Vec<(String, Bytes)> {
    let mut rng = DetRng::new(seed, "mltrain-data");
    let truth: Vec<i64> = (0..params.feats).map(|_| rng.uniform_i64(-5, 5)).collect();
    let mut labels = Vec::with_capacity(params.rows);
    let mut features = Vec::with_capacity(params.rows * params.feats);
    for _ in 0..params.rows {
        let row: Vec<i64> = (0..params.feats)
            .map(|_| rng.uniform_i64(-100, 100))
            .collect();
        let y: i64 =
            row.iter().zip(&truth).map(|(x, w)| x * w).sum::<i64>() + rng.uniform_i64(-10, 10);
        labels.push(y);
        features.extend(row);
    }
    vec![(
        DATASET.to_string(),
        encode_samples(&SampleSet {
            feats: params.feats,
            labels,
            features,
        }),
    )]
}

fn shard_slice(s: &SampleSet, start: usize, end: usize) -> Result<SampleSet, String> {
    if end > s.rows() || start > end {
        return Err("shard range outside dataset".into());
    }
    Ok(SampleSet {
        feats: s.feats,
        labels: s.labels[start..end].to_vec(),
        features: s.features[start * s.feats..end * s.feats].to_vec(),
    })
}

/// The four transformations with calibrated per-row compute models.
pub fn transformations(params: &MlTrainParams) -> Vec<Transformation> {
    let image = swf_core::ExperimentConfig::image_name();
    let cells = params.rows * params.feats;
    let shard_cells = params.rows_per_shard * params.feats;
    let partition = Transformation::new("mlt-partition", calibrated(30.0, 1.5, cells), |inputs| {
        let s = decode_samples(inputs[0].clone())?;
        if s.rows() == 0 || s.feats == 0 {
            return Err("partition: empty dataset".into());
        }
        // Canonical re-encode: partitioning validates and normalizes.
        Ok(vec![encode_samples(&s)])
    })
    .with_container(image);
    let featurize = Transformation::new(
        "mlt-featurize",
        calibrated(20.0, 4.0, shard_cells),
        |inputs| {
            let s = decode_samples(inputs[0].clone())?;
            let p = decode_params(inputs[1].clone())?;
            let [_, start, end] = p[..] else {
                return Err("featurize: want [shard, start, end] params".into());
            };
            let mut shard = shard_slice(&s, start as usize, end as usize)?;
            // Center each feature column on its truncated shard mean.
            let rows = shard.rows() as i64;
            for j in 0..shard.feats {
                let mean: i64 =
                    (0..shard.rows()).map(|r| shard.row(r)[j]).sum::<i64>() / rows.max(1);
                for r in 0..rows as usize {
                    shard.features[r * shard.feats + j] -= mean;
                }
            }
            Ok(vec![encode_samples(&shard)])
        },
    )
    .with_container(image);
    let train = Transformation::new("mlt-train", calibrated(60.0, 9.0, shard_cells), |inputs| {
        let shard = decode_samples(inputs[0].clone())?;
        let mut weights = Vec::with_capacity(shard.feats);
        for j in 0..shard.feats {
            let mut num = 0i64;
            let mut den = 1i64;
            for r in 0..shard.rows() {
                let x = shard.row(r)[j];
                num += x * shard.labels[r];
                den += x * x;
            }
            weights.push(num.saturating_mul(FIXED_POINT) / den);
        }
        Ok(vec![encode_i64s(&weights)])
    })
    .with_container(image);
    let merge = Transformation::new(
        "mlt-merge",
        calibrated(
            25.0,
            2.0,
            params.feats * (params.rows / params.rows_per_shard + 1),
        ),
        |inputs| {
            if inputs.is_empty() {
                return Err("merge: no shard weights".into());
            }
            let first = decode_i64s(inputs[0].clone())?;
            let mut sums = vec![0i64; first.len()];
            for payload in &inputs {
                let w = decode_i64s(payload.clone())?;
                if w.len() != sums.len() {
                    return Err("merge: shard weight arity mismatch".into());
                }
                for (acc, v) in sums.iter_mut().zip(&w) {
                    *acc += v;
                }
            }
            let n = inputs.len() as i64;
            let model: Vec<i64> = sums.into_iter().map(|s| s / n).collect();
            Ok(vec![encode_i64s(&model)])
        },
    )
    .with_container(image);
    vec![partition, featurize, train, merge]
}

/// Build the dynamic workflow: a static partition job, a trigger that
/// expands the featurize→train shard chains, and the merge fan-in.
pub fn workflow(params: &MlTrainParams) -> DynamicWorkflow {
    let env = params.env;
    let per_shard = params.rows_per_shard;
    let mut dwf = DynamicWorkflow::new("mltrain");
    dwf.add_job(
        AbstractJob {
            name: "partition".into(),
            transformation: "mlt-partition".into(),
            inputs: vec![DATASET.into()],
            outputs: vec![CLEAN.into()],
            env,
        },
        "partition",
    );
    // One trigger expands both stages of each shard chain: featurize_i and
    // train_i are linked through the feat_i file, so DAGMan still runs them
    // in dependency order inside the expanded round.
    dwf.add_trigger(
        "fanout-shards",
        TriggerOn::JobDone("partition".into()),
        move |ctx| {
            let clean = ctx
                .outputs
                .get(CLEAN)
                .ok_or("fanout-shards: partitioned dataset missing")?;
            let rows = decode_samples(clean.clone())?.rows();
            let shards = rows.div_ceil(per_shard);
            let mut expansion = Expansion::default();
            for s in 0..shards {
                let start = s * per_shard;
                let end = (start + per_shard).min(rows);
                expansion.staged.push((
                    param_file(s),
                    encode_params(&[s as u64, start as u64, end as u64]),
                ));
                expansion.jobs.push(DynamicJob {
                    job: AbstractJob {
                        name: format!("featurize-{s:03}"),
                        transformation: "mlt-featurize".into(),
                        inputs: vec![CLEAN.into(), param_file(s)],
                        outputs: vec![feat_file(s)],
                        env,
                    },
                    stage: "featurize".into(),
                });
                expansion.jobs.push(DynamicJob {
                    job: AbstractJob {
                        name: format!("train-{s:03}"),
                        transformation: "mlt-train".into(),
                        inputs: vec![feat_file(s)],
                        outputs: vec![weights_file(s)],
                        env,
                    },
                    stage: "train".into(),
                });
            }
            Ok(expansion)
        },
    );
    dwf.add_trigger(
        "merge-model",
        TriggerOn::StageDone("train".into()),
        move |ctx| {
            let weights: Vec<String> = ctx.outputs.keys().cloned().collect();
            let mut expansion = Expansion::default();
            expansion.jobs.push(DynamicJob {
                job: AbstractJob {
                    name: "merge".into(),
                    transformation: "mlt-merge".into(),
                    inputs: weights,
                    outputs: vec![MODEL.into()],
                    env,
                },
                stage: "merge".into(),
            });
            Ok(expansion)
        },
    );
    dwf
}

/// Assemble the full app spec.
pub fn spec(params: &MlTrainParams, seed: u64) -> AppSpec {
    AppSpec {
        name: "mltrain".into(),
        transformations: transformations(params),
        inputs: generate_dataset(params, seed),
        workflow: workflow(params),
        final_output: MODEL.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_recovers_hidden_weight_signs() {
        let params = quick(ExecEnv::Native);
        let data = generate_dataset(&params, 11);
        let ts = transformations(&params);
        let clean = (ts[0].logic)(vec![data[0].1.clone()]).unwrap();
        let p = encode_params(&[0, 0, params.rows as u64]);
        let feats = (ts[1].logic)(vec![clean[0].clone(), p]).unwrap();
        let weights = (ts[2].logic)(vec![feats[0].clone()]).unwrap();
        let w = decode_i64s(weights[0].clone()).unwrap();
        assert_eq!(w.len(), params.feats);
        // Training on the full set twice is bitwise identical.
        let p2 = encode_params(&[0, 0, params.rows as u64]);
        let feats2 = (ts[1].logic)(vec![clean[0].clone(), p2]).unwrap();
        assert_eq!((ts[2].logic)(vec![feats2[0].clone()]).unwrap(), weights);
        // Merging a single shard is the identity.
        let model = (ts[3].logic)(vec![weights[0].clone()]).unwrap();
        assert_eq!(decode_i64s(model[0].clone()).unwrap(), w);
    }

    #[test]
    fn shard_slice_rejects_out_of_range() {
        let s = SampleSet {
            feats: 2,
            labels: vec![1, 2],
            features: vec![1, 2, 3, 4],
        };
        assert!(shard_slice(&s, 0, 3).is_err());
        assert!(shard_slice(&s, 2, 1).is_err());
        assert_eq!(shard_slice(&s, 1, 2).unwrap().labels, vec![2]);
    }
}
