//! ML inference: preprocess → batch predict → postprocess. The predict
//! fan-out is decided at runtime from the row count of the preprocessed
//! batch — the bursty request-batch serving pattern serverless platforms
//! are built for.
//!
//! Scoring is Q47.16 fixed point: `score = Σ (w_j · x_j) >> 16` per row,
//! pure i64 arithmetic, bitwise identical across execution venues.

use bytes::Bytes;

use swf_pegasus::{AbstractJob, Transformation};
use swf_simcore::DetRng;
use swf_workloads::ExecEnv;

use crate::dynamic::{DynamicJob, DynamicWorkflow, Expansion, TriggerOn};
use crate::records::{
    decode_i64s, decode_params, decode_samples, encode_i64s, encode_params, encode_samples,
    SampleSet,
};
use crate::{calibrated, AppSpec};

/// ML inference workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct MlInferParams {
    /// Rows in the request batch (the input-size knob).
    pub rows: usize,
    /// Features per row (model arity).
    pub feats: usize,
    /// Rows per predict task.
    pub rows_per_batch: usize,
    /// Venue every job runs in.
    pub env: ExecEnv,
}

/// Quick scale: 4 predict tasks.
pub fn quick(env: ExecEnv) -> MlInferParams {
    MlInferParams {
        rows: 120,
        feats: 6,
        rows_per_batch: 30,
        env,
    }
}

/// Paper scale: 20 predict tasks.
pub fn paper(env: ExecEnv) -> MlInferParams {
    MlInferParams {
        rows: 3_000,
        feats: 12,
        rows_per_batch: 150,
        env,
    }
}

const BATCH: &str = "mli/batch.rec";
const MODEL: &str = "mli/model.rec";
const PREP: &str = "mli/prep.rec";
const RESULTS: &str = "mli/results.rec";

fn scores_file(batch: usize) -> String {
    format!("mli/scores_{batch:03}.rec")
}

fn param_file(batch: usize) -> String {
    format!("mli/batch_{batch:03}.param")
}

/// Generate the request batch and a fixed-point model to score it with.
pub fn generate_inputs(params: &MlInferParams, seed: u64) -> Vec<(String, Bytes)> {
    let mut rng = DetRng::new(seed, "mlinfer-data");
    let model: Vec<i64> = (0..params.feats)
        .map(|_| rng.uniform_i64(-5 * 65_536, 5 * 65_536))
        .collect();
    let mut features = Vec::with_capacity(params.rows * params.feats);
    for _ in 0..params.rows {
        for _ in 0..params.feats {
            features.push(rng.uniform_i64(-100, 100));
        }
    }
    vec![
        (
            BATCH.to_string(),
            encode_samples(&SampleSet {
                feats: params.feats,
                labels: vec![0; params.rows],
                features,
            }),
        ),
        (MODEL.to_string(), encode_i64s(&model)),
    ]
}

/// The three transformations with calibrated per-row compute models.
pub fn transformations(params: &MlInferParams) -> Vec<Transformation> {
    let image = swf_core::ExperimentConfig::image_name();
    let batch_cells = params.rows_per_batch * params.feats;
    let preprocess = Transformation::new(
        "mli-preprocess",
        calibrated(25.0, 1.2, params.rows * params.feats),
        |inputs| {
            let s = decode_samples(inputs[0].clone())?;
            if s.rows() == 0 {
                return Err("preprocess: empty batch".into());
            }
            // Clamp features into the model's trained range.
            let clamped = SampleSet {
                feats: s.feats,
                labels: s.labels,
                features: s.features.iter().map(|&x| x.clamp(-128, 128)).collect(),
            };
            Ok(vec![encode_samples(&clamped)])
        },
    )
    .with_container(image);
    let predict = Transformation::new(
        "mli-predict",
        calibrated(18.0, 5.0, batch_cells),
        |inputs| {
            let prep = decode_samples(inputs[0].clone())?;
            let model = decode_i64s(inputs[1].clone())?;
            let p = decode_params(inputs[2].clone())?;
            let [_, start, end] = p[..] else {
                return Err("predict: want [batch, start, end] params".into());
            };
            if model.len() != prep.feats {
                return Err("predict: model arity mismatch".into());
            }
            let (start, end) = (start as usize, end as usize);
            if end > prep.rows() || start > end {
                return Err("predict: batch range outside prep".into());
            }
            let scores: Vec<i64> = (start..end)
                .map(|r| {
                    prep.row(r)
                        .iter()
                        .zip(&model)
                        .map(|(x, w)| (w * x) >> 16)
                        .sum()
                })
                .collect();
            Ok(vec![encode_i64s(&scores)])
        },
    )
    .with_container(image);
    let postprocess = Transformation::new(
        "mli-postprocess",
        calibrated(20.0, 0.8, params.rows),
        |inputs| {
            let mut all = Vec::new();
            for payload in &inputs {
                all.extend(decode_i64s(payload.clone())?);
            }
            Ok(vec![encode_i64s(&all)])
        },
    )
    .with_container(image);
    vec![preprocess, predict, postprocess]
}

/// Build the dynamic workflow: static preprocess, runtime predict fan-out,
/// postprocess fan-in.
pub fn workflow(params: &MlInferParams) -> DynamicWorkflow {
    let env = params.env;
    let per_batch = params.rows_per_batch;
    let mut dwf = DynamicWorkflow::new("mlinfer");
    dwf.add_job(
        AbstractJob {
            name: "preprocess".into(),
            transformation: "mli-preprocess".into(),
            inputs: vec![BATCH.into()],
            outputs: vec![PREP.into()],
            env,
        },
        "preprocess",
    );
    dwf.add_trigger(
        "fanout-predict",
        TriggerOn::JobDone("preprocess".into()),
        move |ctx| {
            let prep = ctx
                .outputs
                .get(PREP)
                .ok_or("fanout-predict: preprocessed batch missing")?;
            let rows = decode_samples(prep.clone())?.rows();
            let batches = rows.div_ceil(per_batch);
            let mut expansion = Expansion::default();
            for b in 0..batches {
                let start = b * per_batch;
                let end = (start + per_batch).min(rows);
                expansion.staged.push((
                    param_file(b),
                    encode_params(&[b as u64, start as u64, end as u64]),
                ));
                expansion.jobs.push(DynamicJob {
                    job: AbstractJob {
                        name: format!("predict-{b:03}"),
                        transformation: "mli-predict".into(),
                        inputs: vec![PREP.into(), MODEL.into(), param_file(b)],
                        outputs: vec![scores_file(b)],
                        env,
                    },
                    stage: "predict".into(),
                });
            }
            Ok(expansion)
        },
    );
    dwf.add_trigger(
        "postprocess",
        TriggerOn::StageDone("predict".into()),
        move |ctx| {
            // Zero-padded names keep the score files in batch order, so the
            // concatenated result vector is row-ordered.
            let scores: Vec<String> = ctx.outputs.keys().cloned().collect();
            let mut expansion = Expansion::default();
            expansion.jobs.push(DynamicJob {
                job: AbstractJob {
                    name: "postprocess".into(),
                    transformation: "mli-postprocess".into(),
                    inputs: scores,
                    outputs: vec![RESULTS.into()],
                    env,
                },
                stage: "postprocess".into(),
            });
            Ok(expansion)
        },
    );
    dwf
}

/// Assemble the full app spec.
pub fn spec(params: &MlInferParams, seed: u64) -> AppSpec {
    AppSpec {
        name: "mlinfer".into(),
        transformations: transformations(params),
        inputs: generate_inputs(params, seed),
        workflow: workflow(params),
        final_output: RESULTS.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoring_matches_manual_fixed_point() {
        let params = quick(ExecEnv::Native);
        let inputs = generate_inputs(&params, 5);
        let ts = transformations(&params);
        let prep = (ts[0].logic)(vec![inputs[0].1.clone()]).unwrap();
        let p = encode_params(&[0, 0, params.rows as u64]);
        let scores = (ts[1].logic)(vec![prep[0].clone(), inputs[1].1.clone(), p]).unwrap();
        let s = decode_i64s(scores[0].clone()).unwrap();
        assert_eq!(s.len(), params.rows);
        // Manual check of row 0.
        let batch = decode_samples(prep[0].clone()).unwrap();
        let model = decode_i64s(inputs[1].1.clone()).unwrap();
        let want: i64 = batch
            .row(0)
            .iter()
            .zip(&model)
            .map(|(x, w)| (w * x) >> 16)
            .sum();
        assert_eq!(s[0], want);
        // Postprocess of two half-batches equals postprocess of the whole.
        let whole = (ts[2].logic)(vec![scores[0].clone()]).unwrap();
        assert_eq!(decode_i64s(whole[0].clone()).unwrap(), s);
    }

    #[test]
    fn predict_rejects_model_arity_mismatch() {
        let params = quick(ExecEnv::Native);
        let inputs = generate_inputs(&params, 5);
        let ts = transformations(&params);
        let prep = (ts[0].logic)(vec![inputs[0].1.clone()]).unwrap();
        let bad_model = encode_i64s(&[1, 2]);
        let p = encode_params(&[0, 0, 1]);
        assert!((ts[1].logic)(vec![prep[0].clone(), bad_model, p]).is_err());
    }
}
