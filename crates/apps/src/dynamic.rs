//! Dynamic workflows: runtime DAG expansion driven by completed outputs.
//!
//! Static DAGMan planning fixes the graph before submission; the paper's
//! title promises *dynamic* HPC workflows, where a completed node's output
//! decides its successors. This module provides that layer in the
//! Triggerflow style: a [`DynamicWorkflow`] carries an initial job set plus
//! [`Trigger`]s — event-condition-action rules that fire when a named job
//! (or a whole stage) completes, read the real output bytes, and return
//! new jobs. The runner executes the workflow in *rounds*: plan and run
//! the current frontier through Pegasus/DAGMan/the venue factory, register
//! its outputs as replicas, fire newly satisfied triggers inside
//! [`swf_obs::Category::Expand`] spans, and repeat until no trigger adds
//! work.
//!
//! Determinism contract: trigger actions are pure functions of the output
//! bytes they are handed, so two runs with the same inputs expand to the
//! same DAG shape — [`DynamicReport::shape_fingerprint`] is the testable
//! witness. Rescue composition: each round can run under DAGMan's
//! continue-others policy; a halted round persists its rescue DAG (JSON
//! round-trip, like real DAGMan's rescue file) and resumes with completed
//! expanded nodes salvaged verbatim, never re-executed.

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use bytes::Bytes;

use swf_cluster::Cluster;
use swf_condor::{DagRun, RescueDag};
use swf_pegasus::{AbstractJob, AbstractWorkflow, JobFactory, Pegasus, ReplicaLocation};
use swf_simcore::{now, secs, sleep, SimDuration};

use crate::records::{fnv1a, fnv1a_extend};

/// One job plus the stage tag trigger conditions refer to.
#[derive(Clone)]
pub struct DynamicJob {
    /// The abstract job (inputs/outputs drive intra-round dependencies).
    pub job: AbstractJob,
    /// Stage label, e.g. `validate` — the unit [`TriggerOn::StageDone`]
    /// waits on.
    pub stage: String,
}

/// The event a trigger waits for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TriggerOn {
    /// A single named job completed.
    JobDone(String),
    /// At least one job carries this stage tag and all of them completed.
    StageDone(String),
}

/// What a trigger action sees: the completed outputs of the jobs that
/// satisfied its condition, by file name. Actions must be pure functions
/// of these bytes — that is the determinism contract for data-dependent
/// fan-out.
pub struct TriggerContext {
    /// Output file name → bytes, for every output of the triggering jobs.
    pub outputs: BTreeMap<String, Bytes>,
}

/// What a fired trigger adds to the workflow.
#[derive(Default)]
pub struct Expansion {
    /// New jobs (run in the next round; files may reference any earlier
    /// output or each other).
    pub jobs: Vec<DynamicJob>,
    /// Files to stage on the shared filesystem before the next round
    /// (shard parameter files and similar expansion-time artifacts).
    pub staged: Vec<(String, Bytes)>,
}

/// A trigger action: completed outputs → expansion.
pub type ExpandFn = Rc<dyn Fn(&TriggerContext) -> Result<Expansion, String>>;

/// An event-condition-action rule (Triggerflow-style composition).
pub struct Trigger {
    /// Trigger name (spans and reports).
    pub name: String,
    /// The completion event it waits for.
    pub on: TriggerOn,
    /// The expansion it performs, at most once.
    pub expand: ExpandFn,
}

/// A workflow whose shape is decided at runtime.
#[derive(Default)]
pub struct DynamicWorkflow {
    /// Workflow name (round DAGs are named `<name>#r<i>`).
    pub name: String,
    jobs: Vec<DynamicJob>,
    triggers: Vec<Trigger>,
}

impl DynamicWorkflow {
    /// Empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        DynamicWorkflow {
            name: name.into(),
            jobs: Vec::new(),
            triggers: Vec::new(),
        }
    }

    /// Add an initial job under a stage tag.
    pub fn add_job(&mut self, job: AbstractJob, stage: impl Into<String>) {
        self.jobs.push(DynamicJob {
            job,
            stage: stage.into(),
        });
    }

    /// Add a trigger.
    pub fn add_trigger(
        &mut self,
        name: impl Into<String>,
        on: TriggerOn,
        expand: impl Fn(&TriggerContext) -> Result<Expansion, String> + 'static,
    ) {
        self.triggers.push(Trigger {
            name: name.into(),
            on,
            expand: Rc::new(expand),
        });
    }

    /// The initial jobs.
    pub fn initial_jobs(&self) -> &[DynamicJob] {
        &self.jobs
    }

    /// The triggers.
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }
}

/// Per-round execution statistics.
#[derive(Clone, Debug)]
pub struct RoundStats {
    /// Round index (0-based).
    pub index: usize,
    /// Jobs executed this round.
    pub jobs: usize,
    /// Round makespan (submission to last completion, rescue waits
    /// included).
    pub makespan: SimDuration,
    /// Rescue resumptions this round needed (0 on a calm run).
    pub rescue_rounds: u32,
}

/// One trigger firing.
#[derive(Clone, Debug)]
pub struct ExpansionStats {
    /// Trigger name.
    pub trigger: String,
    /// Round after which it fired.
    pub round: usize,
    /// Jobs it added (the data-derived fan-out degree).
    pub jobs_added: usize,
}

/// Result of a dynamic run.
#[derive(Clone, Debug)]
pub struct DynamicReport {
    /// Workflow name.
    pub name: String,
    /// Per-round statistics, in execution order.
    pub rounds: Vec<RoundStats>,
    /// Trigger firings, in firing order.
    pub expansions: Vec<ExpansionStats>,
    /// Total jobs executed across all rounds.
    pub jobs_total: usize,
    /// End-to-end makespan (all rounds plus expansion decisions).
    pub makespan: SimDuration,
    /// Nodes salvaged from rescue DAGs across all resumptions.
    pub nodes_salvaged: usize,
    /// Canonical one-line-per-job description of the expanded DAG, in
    /// execution order — the input of [`DynamicReport::shape_fingerprint`].
    pub shape: Vec<String>,
}

impl DynamicReport {
    /// FNV-1a fingerprint of the expanded DAG shape: every job's name,
    /// stage, transformation and file sets, plus round boundaries and
    /// trigger fan-outs (venue excluded — the shape is the same in all
    /// three environments). Two runs with the same input data must agree
    /// bit for bit; different input sizes must not.
    pub fn shape_fingerprint(&self) -> u64 {
        let mut h = fnv1a(self.name.as_bytes());
        for line in &self.shape {
            h = fnv1a_extend(h, line.as_bytes());
            h = fnv1a_extend(h, b"\n");
        }
        h
    }
}

/// Options for a dynamic run.
#[derive(Clone, Copy, Debug)]
pub struct DynamicRunConfig {
    /// Resume halted rounds from their rescue DAGs (requires the Pegasus
    /// DAGMan config to use [`swf_condor::FailurePolicy::ContinueOthers`]).
    pub rescue: bool,
    /// Maximum rescue resumptions per round before giving up.
    pub max_rescue_rounds: u32,
    /// Wait between a halt and its resumption (operator reaction time).
    pub rescue_wait: SimDuration,
}

impl Default for DynamicRunConfig {
    fn default() -> Self {
        DynamicRunConfig {
            rescue: false,
            max_rescue_rounds: 0,
            rescue_wait: secs(5.0),
        }
    }
}

/// Hard cap on expansion rounds — a trigger set that keeps adding work
/// past this is a bug, not a workflow.
const MAX_ROUNDS: usize = 64;

fn shape_line(round: usize, dj: &DynamicJob) -> String {
    // The venue is deliberately absent: the expanded *shape* must be
    // identical across native/container/serverless runs of the same data.
    format!(
        "r{round} {name} stage={stage} tf={tf} in={inputs:?} out={outputs:?}",
        name = dj.job.name,
        stage = dj.stage,
        tf = dj.job.transformation,
        inputs = dj.job.inputs,
        outputs = dj.job.outputs,
    )
}

/// Execute a dynamic workflow to completion: run the current frontier as a
/// planned DAG, fire newly satisfied triggers on the real output bytes,
/// append their jobs, repeat. Outputs of completed jobs are registered in
/// the replica catalog so later rounds can consume them.
pub async fn run_dynamic(
    pegasus: &Pegasus,
    factory: &dyn JobFactory,
    cluster: &Cluster,
    dwf: &DynamicWorkflow,
    cfg: &DynamicRunConfig,
) -> Result<DynamicReport, String> {
    if dwf.initial_jobs().is_empty() {
        return Err(format!("dynamic workflow {} has no initial jobs", dwf.name));
    }
    let obs = swf_obs::current();
    let root = obs.span(
        swf_obs::SpanContext::NONE,
        "apps/dynamic",
        format!("workflow:{}", dwf.name),
        swf_obs::Category::Other,
    );
    let started = now();

    // Everything the workflow has learned so far.
    let mut all_jobs: Vec<DynamicJob> = Vec::new();
    let mut job_names: BTreeSet<String> = BTreeSet::new();
    let mut produced: BTreeSet<String> = BTreeSet::new();
    let mut completed: BTreeSet<String> = BTreeSet::new();
    let mut fired: BTreeSet<usize> = BTreeSet::new();

    let mut pending: Vec<DynamicJob> = dwf.initial_jobs().to_vec();
    let mut rounds = Vec::new();
    let mut expansions = Vec::new();
    let mut shape = Vec::new();
    let mut nodes_salvaged = 0usize;
    let mut round = 0usize;

    while !pending.is_empty() {
        if round >= MAX_ROUNDS {
            return Err(format!(
                "dynamic workflow {} exceeded {MAX_ROUNDS} expansion rounds",
                dwf.name
            ));
        }
        // Admit the frontier, checking the invariants expansion could
        // break: unique job names, single producer per file.
        let mut wf = AbstractWorkflow::new(format!("{}#r{round}", dwf.name));
        for dj in &pending {
            if !job_names.insert(dj.job.name.clone()) {
                return Err(format!("expansion duplicated job name {}", dj.job.name));
            }
            for out in &dj.job.outputs {
                if !produced.insert(out.clone()) {
                    return Err(format!("expansion duplicated producer of {out}"));
                }
            }
            shape.push(shape_line(round, dj));
            wf.add_job(dj.job.clone());
        }

        // Run the round, resuming from rescue DAGs when configured.
        let round_started = now();
        let mut resume: Option<RescueDag> = None;
        let mut rescue_rounds = 0u32;
        loop {
            let (_stats, run) = pegasus
                .run_resumable(&wf, factory, resume.as_ref())
                .await
                .map_err(|e| format!("round {round} of {}: {e}", dwf.name))?;
            match run {
                DagRun::Completed(_) => break,
                DagRun::Halted { rescue, .. } => {
                    if !cfg.rescue || rescue_rounds >= cfg.max_rescue_rounds {
                        return Err(format!(
                            "round {round} of {} halted; failed nodes: {:?}",
                            dwf.name,
                            rescue.failed_nodes()
                        ));
                    }
                    rescue_rounds += 1;
                    // Persist and reload the artifact — the same JSON
                    // round-trip a rescue file on disk would make.
                    let text = rescue.to_json().to_string();
                    let reloaded = RescueDag::parse(&text)?;
                    nodes_salvaged += reloaded.done_nodes().len();
                    resume = Some(reloaded);
                    sleep(cfg.rescue_wait).await;
                }
            }
        }
        rounds.push(RoundStats {
            index: round,
            jobs: pending.len(),
            makespan: now() - round_started,
            rescue_rounds,
        });

        // Register the round's outputs so later rounds can consume them.
        for dj in &pending {
            completed.insert(dj.job.name.clone());
            for out in &dj.job.outputs {
                pegasus
                    .replicas()
                    .register(out, ReplicaLocation::SharedFs(out.clone()));
            }
        }
        all_jobs.append(&mut pending);

        // Fire every trigger whose condition just became satisfied.
        for (ti, trigger) in dwf.triggers().iter().enumerate() {
            if fired.contains(&ti) {
                continue;
            }
            let sources: Vec<&DynamicJob> = match &trigger.on {
                TriggerOn::JobDone(name) => {
                    if !completed.contains(name) {
                        continue;
                    }
                    all_jobs.iter().filter(|dj| &dj.job.name == name).collect()
                }
                TriggerOn::StageDone(stage) => {
                    let members: Vec<&DynamicJob> =
                        all_jobs.iter().filter(|dj| &dj.stage == stage).collect();
                    if members.is_empty()
                        || !members.iter().all(|dj| completed.contains(&dj.job.name))
                    {
                        continue;
                    }
                    members
                }
            };
            fired.insert(ti);
            // The expansion decision: read the triggering outputs off the
            // shared filesystem, run the pure action, stage its files.
            // The span makes the decision a first-class critical-path
            // category.
            let span = obs.span(
                root.ctx(),
                "apps/dynamic",
                format!("expand:{}", trigger.name),
                swf_obs::Category::Expand,
            );
            let mut outputs = BTreeMap::new();
            for dj in &sources {
                for out in &dj.job.outputs {
                    let data = cluster
                        .shared_fs()
                        .read(out)
                        .await
                        .map_err(|e| format!("trigger {}: {out}: {e}", trigger.name))?;
                    outputs.insert(out.clone(), data);
                }
            }
            let expansion = (trigger.expand)(&TriggerContext { outputs })
                .map_err(|e| format!("trigger {}: {e}", trigger.name))?;
            for (name, data) in &expansion.staged {
                cluster.shared_fs().stage(name, data.clone());
                pegasus
                    .replicas()
                    .register(name, ReplicaLocation::SharedFs(name.clone()));
            }
            drop(span);
            obs.counter_add("apps.triggers_fired", 1);
            obs.counter_add("apps.jobs_expanded", expansion.jobs.len() as u64);
            obs.observe("apps.fanout", expansion.jobs.len() as f64);
            if !expansion.jobs.is_empty() {
                expansions.push(ExpansionStats {
                    trigger: trigger.name.clone(),
                    round,
                    jobs_added: expansion.jobs.len(),
                });
                pending.extend(expansion.jobs);
            }
        }
        round += 1;
    }

    let makespan = now() - started;
    drop(root);
    for e in &expansions {
        shape.push(format!(
            "expand {} r{} +{}",
            e.trigger, e.round, e.jobs_added
        ));
    }
    Ok(DynamicReport {
        name: dwf.name.clone(),
        jobs_total: all_jobs.len(),
        rounds,
        expansions,
        makespan,
        nodes_salvaged,
        shape,
    })
}
