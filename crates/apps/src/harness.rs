//! End-to-end app execution on the full testbed: boot the four-VM stack,
//! register transformations (and Knative services for the serverless
//! venue), stage the generated inputs, and drive the dynamic workflow to
//! completion through Pegasus → DAGMan → the integrated venue factory.

use bytes::Bytes;

use swf_core::{ExperimentConfig, IntegratedFactory, Provisioning, TestBed};
use swf_knative::Knative;
use swf_pegasus::{Pegasus, ReplicaLocation, Transformation};
use swf_simcore::{secs, Sim};
use swf_workloads::ExecEnv;

use crate::dynamic::{run_dynamic, DynamicReport, DynamicRunConfig};
use crate::records::fnv1a;
use crate::{build_app, AppKind, AppSpec};

/// One app execution request.
#[derive(Clone, Copy, Debug)]
pub struct AppRun {
    /// Which application.
    pub kind: AppKind,
    /// Venue every job runs in.
    pub env: ExecEnv,
    /// Input-generation seed.
    pub seed: u64,
    /// Quick (CI) scale instead of paper scale.
    pub quick: bool,
    /// Collect spans/metrics (enables the observability pipeline).
    pub trace: bool,
    /// Resume halted rounds from rescue DAGs (switches DAGMan to
    /// continue-others).
    pub rescue: bool,
    /// Maximum rescue resumptions per round.
    pub max_rescue_rounds: u32,
}

impl AppRun {
    /// Quick-scale run of `kind` in `env` with the default experiment seed.
    pub fn quick(kind: AppKind, env: ExecEnv) -> Self {
        AppRun {
            kind,
            env,
            seed: ExperimentConfig::quick().seed,
            quick: true,
            trace: false,
            rescue: false,
            max_rescue_rounds: 0,
        }
    }

    /// Enable tracing (builder style).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enable rescue-DAG resumption (builder style).
    pub fn with_rescue(mut self, max_rounds: u32) -> Self {
        self.rescue = true;
        self.max_rescue_rounds = max_rounds;
        self
    }
}

/// What an app execution produced.
pub struct AppOutcome {
    /// The dynamic run report (rounds, expansions, makespan, salvage).
    pub report: DynamicReport,
    /// The app's final output file, byte for byte.
    pub output: Bytes,
    /// FNV-1a fingerprint of `output` — the cross-venue equality witness.
    pub output_fingerprint: u64,
    /// The observability handle the run recorded into (disabled when
    /// `trace` was off).
    pub obs: swf_obs::Obs,
}

fn register_functions(knative: &Knative, config: &ExperimentConfig, ts: &[Transformation]) {
    for t in ts {
        swf_core::FunctionBuilder::new(
            &t.name,
            swf_container::ImageRef::parse(ExperimentConfig::image_name()),
            t,
        )
        .container_concurrency(config.container_concurrency)
        // One warm pod per service: the bed hosts one service per
        // transformation, so the experiment-level min-scale (sized for a
        // single matmul service) would oversubscribe the worker nodes.
        .provisioning(config.provisioning, 1)
        .serialization_rate(config.serialization_rate)
        .register(knative);
    }
}

/// Run an application end to end. See [`run_app_with`].
pub fn run_app(run: &AppRun) -> Result<AppOutcome, String> {
    run_app_with(run, |_| {})
}

/// Run an application end to end, letting `mutate` adjust the built
/// [`AppSpec`] first (tests use this to wrap transformations with fault
/// injection). The whole execution happens inside a fresh deterministic
/// simulation; the returned outcome carries the real output bytes.
pub fn run_app_with(
    run: &AppRun,
    mutate: impl FnOnce(&mut AppSpec) + 'static,
) -> Result<AppOutcome, String> {
    let run = *run;
    let sim = Sim::new();
    sim.block_on(async move {
        let mut config = if run.quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::paper()
        };
        config.trace = run.trace;
        if run.rescue {
            config.dagman.on_failure = swf_condor::FailurePolicy::ContinueOthers;
        }
        let obs = if config.trace {
            swf_obs::Obs::enabled()
        } else {
            swf_obs::Obs::disabled()
        };
        let _guard = swf_obs::install(obs.clone());

        let bed = TestBed::boot(&config);
        let mut spec = build_app(run.kind, run.env, run.seed, run.quick);
        mutate(&mut spec);

        let pegasus = Pegasus::new(bed.condor.clone()).with_dagman(config.dagman);
        for t in &spec.transformations {
            pegasus.transformations().register(t.clone());
        }
        if run.env == ExecEnv::Serverless {
            register_functions(&bed.knative, &config, &spec.transformations);
            if config.provisioning == Provisioning::PreStage {
                for t in &spec.transformations {
                    bed.knative
                        .wait_ready(&t.name, 1, secs(600.0))
                        .await
                        .map_err(|e| format!("service {}: {e}", t.name))?;
                }
            }
        }

        // Stage generated inputs and the container image tarball.
        for (name, data) in &spec.inputs {
            bed.cluster.shared_fs().stage(name, data.clone());
            pegasus
                .replicas()
                .register(name, ReplicaLocation::SharedFs(name.clone()));
        }
        let tarball = bed.stage_image_tarball();
        pegasus
            .replicas()
            .register(&tarball, ReplicaLocation::SharedFs(tarball.clone()));
        let factory = IntegratedFactory::new(
            bed.knative.clone(),
            bed.k8s.clone(),
            bed.image.clone(),
            config.container_staging,
            Some(tarball),
        )
        .with_serialization_rate(config.serialization_rate);

        let dyn_cfg = DynamicRunConfig {
            rescue: run.rescue,
            max_rescue_rounds: run.max_rescue_rounds,
            ..DynamicRunConfig::default()
        };
        let report =
            run_dynamic(&pegasus, &factory, &bed.cluster, &spec.workflow, &dyn_cfg).await?;
        let output = bed
            .cluster
            .shared_fs()
            .read(&spec.final_output)
            .await
            .map_err(|e| format!("final output {}: {e}", spec.final_output))?;
        Ok(AppOutcome {
            output_fingerprint: fnv1a(&output),
            report,
            output,
            obs,
        })
    })
}
