//! Binary record formats shared by the application kernels.
//!
//! Every application passes data between tasks as files on the simulated
//! filesystems; these codecs are their wire formats. All decoders return
//! `Err(String)` on malformed input (task logic propagates the message as
//! a job failure), never panic, and every format round-trips bit-exactly
//! — the foundation of the cross-environment equivalence guarantee.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of a byte slice: the deterministic fingerprint used for
/// output equality checks, DAG-shape fingerprints and word bucketing.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Extend an FNV-1a hash with more bytes (order-sensitive chaining).
pub fn fnv1a_extend(mut h: u64, data: &[u8]) -> u64 {
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fixed-point scale used by the ML kernels (Q47.16).
pub const FIXED_POINT: i64 = 1 << 16;

fn check_magic(data: &mut Bytes, magic: &[u8; 4], what: &str) -> Result<(), String> {
    if data.len() < 4 || &data[..4] != magic {
        return Err(format!("{what}: bad magic"));
    }
    data.advance(4);
    Ok(())
}

/// One market-data trade record (FINRA app).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trade {
    /// Instrument symbol id.
    pub symbol: u32,
    /// Price in cents (≤ 0 marks a corrupt feed record).
    pub price_cents: i64,
    /// Share quantity (0 marks a corrupt feed record).
    pub qty: u32,
    /// Feed timestamp (monotonic within a feed).
    pub ts: u64,
}

/// Encode a trade batch: magic `SWFT`, u32 count, 24 B per record.
pub fn encode_trades(trades: &[Trade]) -> Bytes {
    let mut buf = BytesMut::with_capacity(trades.len().saturating_mul(24).saturating_add(8));
    buf.put_slice(b"SWFT");
    buf.put_u32_le(u32::try_from(trades.len()).unwrap_or(u32::MAX));
    for t in trades {
        buf.put_u32_le(t.symbol);
        buf.put_i64_le(t.price_cents);
        buf.put_u32_le(t.qty);
        buf.put_u64_le(t.ts);
    }
    buf.freeze()
}

/// Decode a trade batch encoded by [`encode_trades`].
pub fn decode_trades(mut data: Bytes) -> Result<Vec<Trade>, String> {
    check_magic(&mut data, b"SWFT", "trades")?;
    if data.len() < 4 {
        return Err("trades: truncated count".into());
    }
    let n = data.get_u32_le() as usize;
    let expected = n.checked_mul(24).ok_or("trades: count overflow")?;
    if data.len() != expected {
        return Err(format!(
            "trades: expected {expected}B of records, got {}B",
            data.len()
        ));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Trade {
            symbol: data.get_u32_le(),
            price_cents: data.get_i64_le(),
            qty: data.get_u32_le(),
            ts: data.get_u64_le(),
        });
    }
    Ok(out)
}

/// A labelled sample set (ML apps): `rows × feats` feature matrix plus one
/// label per row, all i64.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleSet {
    /// Features per row.
    pub feats: usize,
    /// One label per row (0 for unlabelled inference batches).
    pub labels: Vec<i64>,
    /// Row-major features, `labels.len() * feats` entries.
    pub features: Vec<i64>,
}

impl SampleSet {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.labels.len()
    }

    /// Features of row `r`.
    pub fn row(&self, r: usize) -> &[i64] {
        &self.features[r * self.feats..(r + 1) * self.feats]
    }
}

/// Encode a sample set: magic `SWFS`, u32 rows, u32 feats, labels, rows.
pub fn encode_samples(s: &SampleSet) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        s.labels
            .len()
            .saturating_add(s.features.len())
            .saturating_mul(8)
            .saturating_add(12),
    );
    buf.put_slice(b"SWFS");
    buf.put_u32_le(u32::try_from(s.labels.len()).unwrap_or(u32::MAX));
    buf.put_u32_le(s.feats as u32);
    for &l in &s.labels {
        buf.put_i64_le(l);
    }
    for &f in &s.features {
        buf.put_i64_le(f);
    }
    buf.freeze()
}

/// Decode a sample set encoded by [`encode_samples`].
pub fn decode_samples(mut data: Bytes) -> Result<SampleSet, String> {
    check_magic(&mut data, b"SWFS", "samples")?;
    if data.len() < 8 {
        return Err("samples: truncated header".into());
    }
    let rows = data.get_u32_le() as usize;
    let feats = data.get_u32_le() as usize;
    let cells = rows
        .checked_mul(feats + 1)
        .and_then(|c| c.checked_mul(8))
        .ok_or("samples: shape overflow")?;
    if data.len() != cells {
        return Err(format!(
            "samples: expected {cells}B for {rows}×{feats}, got {}B",
            data.len()
        ));
    }
    let mut labels = Vec::with_capacity(rows);
    for _ in 0..rows {
        labels.push(data.get_i64_le());
    }
    let mut features = Vec::with_capacity(rows * feats);
    for _ in 0..rows * feats {
        features.push(data.get_i64_le());
    }
    Ok(SampleSet {
        feats,
        labels,
        features,
    })
}

/// Encode a list of u64 parameters: magic `SWFP`, u32 count, values.
/// Used for shard parameter files and numeric summary records.
pub fn encode_params(values: &[u64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(values.len().saturating_mul(8).saturating_add(8));
    buf.put_slice(b"SWFP");
    buf.put_u32_le(u32::try_from(values.len()).unwrap_or(u32::MAX));
    for &v in values {
        buf.put_u64_le(v);
    }
    buf.freeze()
}

/// Decode a parameter list encoded by [`encode_params`].
pub fn decode_params(mut data: Bytes) -> Result<Vec<u64>, String> {
    check_magic(&mut data, b"SWFP", "params")?;
    if data.len() < 4 {
        return Err("params: truncated count".into());
    }
    let n = data.get_u32_le() as usize;
    let expected = n.checked_mul(8).ok_or("params: count overflow")?;
    if data.len() != expected {
        return Err(format!("params: expected {expected}B, got {}B", data.len()));
    }
    Ok((0..n).map(|_| data.get_u64_le()).collect())
}

/// Encode a list of i64 values: magic `SWFI`, u32 count, values. Used for
/// model weights and prediction vectors.
pub fn encode_i64s(values: &[i64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(values.len().saturating_mul(8).saturating_add(8));
    buf.put_slice(b"SWFI");
    buf.put_u32_le(u32::try_from(values.len()).unwrap_or(u32::MAX));
    for &v in values {
        buf.put_i64_le(v);
    }
    buf.freeze()
}

/// Decode an i64 list encoded by [`encode_i64s`].
pub fn decode_i64s(mut data: Bytes) -> Result<Vec<i64>, String> {
    check_magic(&mut data, b"SWFI", "i64s")?;
    if data.len() < 4 {
        return Err("i64s: truncated count".into());
    }
    let n = data.get_u32_le() as usize;
    let expected = n.checked_mul(8).ok_or("i64s: count overflow")?;
    if data.len() != expected {
        return Err(format!("i64s: expected {expected}B, got {}B", data.len()));
    }
    Ok((0..n).map(|_| data.get_i64_le()).collect())
}

/// Encode a word→count table: magic `SWFC`, u32 entries, each a u32
/// length-prefixed word plus u64 count, in key order (the `BTreeMap`
/// iteration order makes the encoding canonical).
pub fn encode_counts(counts: &BTreeMap<String, u64>) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(b"SWFC");
    buf.put_u32_le(u32::try_from(counts.len()).unwrap_or(u32::MAX));
    for (word, &n) in counts {
        buf.put_u32_le(u32::try_from(word.len()).unwrap_or(u32::MAX));
        buf.put_slice(word.as_bytes());
        buf.put_u64_le(n);
    }
    buf.freeze()
}

/// Decode a count table encoded by [`encode_counts`].
pub fn decode_counts(mut data: Bytes) -> Result<BTreeMap<String, u64>, String> {
    check_magic(&mut data, b"SWFC", "counts")?;
    if data.len() < 4 {
        return Err("counts: truncated count".into());
    }
    let n = data.get_u32_le() as usize;
    let mut out = BTreeMap::new();
    for i in 0..n {
        if data.len() < 4 {
            return Err(format!("counts: entry {i} truncated"));
        }
        let wlen = data.get_u32_le() as usize;
        if data.len() < wlen + 8 {
            return Err(format!("counts: entry {i} truncated"));
        }
        let word = String::from_utf8(data.split_to(wlen).to_vec())
            .map_err(|_| format!("counts: entry {i} not UTF-8"))?;
        out.insert(word, data.get_u64_le());
    }
    if !data.is_empty() {
        return Err(format!("counts: {}B of trailing garbage", data.len()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::DetRng;

    #[test]
    fn trades_roundtrip_and_reject_garbage() {
        let mut rng = DetRng::new(1, "trades");
        let trades: Vec<Trade> = (0..50)
            .map(|i| Trade {
                symbol: rng.uniform_u64(0, 64) as u32,
                price_cents: rng.uniform_i64(1, 100_000),
                qty: rng.uniform_u64(1, 1000) as u32,
                ts: i,
            })
            .collect();
        let enc = encode_trades(&trades);
        assert_eq!(decode_trades(enc.clone()).unwrap(), trades);
        assert!(decode_trades(enc.slice(0..enc.len() - 3)).is_err());
        assert!(decode_trades(Bytes::from_static(b"NOPE")).is_err());
    }

    #[test]
    fn samples_roundtrip() {
        let s = SampleSet {
            feats: 3,
            labels: vec![5, -7],
            features: vec![1, 2, 3, -4, -5, -6],
        };
        let dec = decode_samples(encode_samples(&s)).unwrap();
        assert_eq!(dec, s);
        assert_eq!(dec.rows(), 2);
        assert_eq!(dec.row(1), &[-4, -5, -6]);
    }

    #[test]
    fn params_and_i64s_roundtrip() {
        let p = vec![0, 1, u64::MAX];
        assert_eq!(decode_params(encode_params(&p)).unwrap(), p);
        let v = vec![i64::MIN, 0, i64::MAX];
        assert_eq!(decode_i64s(encode_i64s(&v)).unwrap(), v);
        assert!(decode_params(Bytes::from_static(b"SWFP")).is_err());
    }

    #[test]
    fn counts_roundtrip_is_canonical() {
        let mut a = BTreeMap::new();
        a.insert("beta".to_string(), 2u64);
        a.insert("alpha".to_string(), 9u64);
        let enc = encode_counts(&a);
        assert_eq!(decode_counts(enc.clone()).unwrap(), a);
        // Same map content always encodes to the same bytes.
        let mut b = BTreeMap::new();
        b.insert("alpha".to_string(), 9u64);
        b.insert("beta".to_string(), 2u64);
        assert_eq!(enc, encode_counts(&b));
        assert!(decode_counts(enc.slice(0..enc.len() - 1)).is_err());
    }

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a vector: empty input hashes to the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"ab"), fnv1a_extend(fnv1a(b"a"), b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
