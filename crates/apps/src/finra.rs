//! FINRA-style market-data validation: a high fan-out validate/aggregate
//! workflow whose validation width is decided at runtime from the record
//! count of the ingested feed — the serverless-friendly burst workload the
//! paper's motivation cites.
//!
//! Shape: `ingest → validate × ⌈n/shard⌉ → aggregate`. The ingest job
//! normalizes the raw feed; the `fanout-validate` trigger reads the clean
//! batch, derives the shard count from the *data*, stages one parameter
//! file per shard and expands the validate stage; the `aggregate` trigger
//! fans the shard summaries back in.

use bytes::Bytes;

use swf_pegasus::{AbstractJob, Transformation};
use swf_simcore::DetRng;
use swf_workloads::ExecEnv;

use crate::dynamic::{DynamicWorkflow, Expansion, TriggerOn};
use crate::records::{decode_params, decode_trades, encode_params, encode_trades, fnv1a, Trade};
use crate::{calibrated, AppSpec};

/// FINRA workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct FinraParams {
    /// Trades in the raw feed (the input-size knob fan-out derives from).
    pub trades: usize,
    /// Records per validation shard.
    pub shard: usize,
    /// Venue every job runs in.
    pub env: ExecEnv,
}

/// Quick scale: ~5 validation shards.
pub fn quick(env: ExecEnv) -> FinraParams {
    FinraParams {
        trades: 300,
        shard: 64,
        env,
    }
}

/// Paper scale: a larger feed, wider fan-out.
pub fn paper(env: ExecEnv) -> FinraParams {
    FinraParams {
        trades: 4_000,
        shard: 250,
        env,
    }
}

const FEED: &str = "finra/trades.rec";
const CLEAN: &str = "finra/clean.rec";
const REPORT: &str = "finra/report.rec";

fn summary_file(shard: usize) -> String {
    format!("finra/summary_{shard:03}.rec")
}

fn param_file(shard: usize) -> String {
    format!("finra/shard_{shard:03}.param")
}

/// Generate the raw feed: mostly well-formed trades with a deterministic
/// sprinkle of corrupt records (non-positive price or zero quantity) for
/// the validators to flag.
pub fn generate_feed(params: &FinraParams, seed: u64) -> Vec<(String, Bytes)> {
    let mut rng = DetRng::new(seed, "finra-feed");
    let trades: Vec<Trade> = (0..params.trades)
        .map(|i| {
            let corrupt = rng.chance(0.03);
            Trade {
                symbol: rng.uniform_u64(0, 64) as u32,
                price_cents: if corrupt {
                    0
                } else {
                    rng.uniform_i64(100, 100_000)
                },
                qty: if corrupt {
                    0
                } else {
                    rng.uniform_u64(1, 1_000) as u32
                },
                ts: i as u64,
            }
        })
        .collect();
    vec![(FEED.to_string(), encode_trades(&trades))]
}

/// The three transformations with their calibrated compute models
/// (per-record rates measured in microseconds of single-core time).
pub fn transformations(params: &FinraParams) -> Vec<Transformation> {
    let ingest = Transformation::new(
        "finra-ingest",
        calibrated(40.0, 2.0, params.trades),
        |inputs| {
            let mut trades = decode_trades(inputs[0].clone())?;
            // Normalize: canonical (symbol, ts) order.
            trades.sort_by_key(|t| (t.symbol, t.ts));
            Ok(vec![encode_trades(&trades)])
        },
    );
    let validate = Transformation::new(
        "finra-validate",
        calibrated(15.0, 6.0, params.shard),
        |inputs| {
            let trades = decode_trades(inputs[0].clone())?;
            let p = decode_params(inputs[1].clone())?;
            let [shard, start, end] = p[..] else {
                return Err("validate: want [shard, start, end] params".into());
            };
            let slice = trades
                .get(start as usize..end as usize)
                .ok_or("validate: shard range outside batch")?;
            let mut valid = 0u64;
            let mut flagged = 0u64;
            let mut notional = 0u64;
            for t in slice {
                if t.price_cents > 0 && t.qty > 0 {
                    valid += 1;
                    notional += t.price_cents as u64 * t.qty as u64;
                } else {
                    flagged += 1;
                }
            }
            let fp = fnv1a(&encode_trades(slice));
            Ok(vec![encode_params(&[
                shard,
                slice.len() as u64,
                valid,
                flagged,
                notional,
                fp,
            ])])
        },
    )
    .with_container(swf_core::ExperimentConfig::image_name());
    let aggregate = Transformation::new(
        "finra-aggregate",
        calibrated(25.0, 1.0, params.trades / params.shard + 1),
        |inputs| {
            let (mut n, mut valid, mut flagged, mut notional) = (0u64, 0u64, 0u64, 0u64);
            let mut combined = fnv1a(b"finra-report");
            for payload in &inputs {
                let s = decode_params(payload.clone())?;
                let [_, sn, sv, sf, snot, sfp] = s[..] else {
                    return Err("aggregate: malformed shard summary".into());
                };
                n += sn;
                valid += sv;
                flagged += sf;
                notional += snot;
                combined = crate::records::fnv1a_extend(combined, &sfp.to_le_bytes());
            }
            Ok(vec![encode_params(&[
                inputs.len() as u64,
                n,
                valid,
                flagged,
                notional,
                combined,
            ])])
        },
    );
    vec![
        ingest.with_container(swf_core::ExperimentConfig::image_name()),
        validate,
        aggregate.with_container(swf_core::ExperimentConfig::image_name()),
    ]
}

/// Build the dynamic workflow: one static ingest job plus the two
/// expansion triggers.
pub fn workflow(params: &FinraParams) -> DynamicWorkflow {
    let env = params.env;
    let shard = params.shard;
    let mut dwf = DynamicWorkflow::new("finra");
    dwf.add_job(
        AbstractJob {
            name: "ingest".into(),
            transformation: "finra-ingest".into(),
            inputs: vec![FEED.into()],
            outputs: vec![CLEAN.into()],
            env,
        },
        "ingest",
    );
    // Fan-out decided by the data: shard count derives from the record
    // count of the *cleaned* batch, read after ingest completes.
    dwf.add_trigger(
        "fanout-validate",
        TriggerOn::JobDone("ingest".into()),
        move |ctx| {
            let clean = ctx
                .outputs
                .get(CLEAN)
                .ok_or("fanout-validate: clean batch missing")?;
            let n = decode_trades(clean.clone())?.len();
            let shards = n.div_ceil(shard);
            let mut expansion = Expansion::default();
            for s in 0..shards {
                let start = s * shard;
                let end = (start + shard).min(n);
                expansion.staged.push((
                    param_file(s),
                    encode_params(&[s as u64, start as u64, end as u64]),
                ));
                expansion.jobs.push(crate::dynamic::DynamicJob {
                    job: AbstractJob {
                        name: format!("validate-{s:03}"),
                        transformation: "finra-validate".into(),
                        inputs: vec![CLEAN.into(), param_file(s)],
                        outputs: vec![summary_file(s)],
                        env,
                    },
                    stage: "validate".into(),
                });
            }
            Ok(expansion)
        },
    );
    // Fan-in once every validator (however many the data produced) is done.
    dwf.add_trigger(
        "aggregate",
        TriggerOn::StageDone("validate".into()),
        move |ctx| {
            // Zero-padded names sort in shard order.
            let summaries: Vec<String> = ctx.outputs.keys().cloned().collect();
            let mut expansion = Expansion::default();
            expansion.jobs.push(crate::dynamic::DynamicJob {
                job: AbstractJob {
                    name: "aggregate".into(),
                    transformation: "finra-aggregate".into(),
                    inputs: summaries,
                    outputs: vec![REPORT.into()],
                    env,
                },
                stage: "aggregate".into(),
            });
            Ok(expansion)
        },
    );
    dwf
}

/// Assemble the full app spec.
pub fn spec(params: &FinraParams, seed: u64) -> AppSpec {
    AppSpec {
        name: "finra".into(),
        transformations: transformations(params),
        inputs: generate_feed(params, seed),
        workflow: workflow(params),
        final_output: REPORT.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_deterministic_and_flag_corrupt_records() {
        let params = quick(ExecEnv::Native);
        let feed = generate_feed(&params, 7);
        assert_eq!(feed.len(), 1);
        let ts = transformations(&params);
        let clean = (ts[0].logic)(vec![feed[0].1.clone()]).unwrap();
        let trades = decode_trades(clean[0].clone()).unwrap();
        assert_eq!(trades.len(), params.trades);
        // Validate the whole batch as one shard.
        let p = encode_params(&[0, 0, trades.len() as u64]);
        let summary = (ts[1].logic)(vec![clean[0].clone(), p]).unwrap();
        let s = decode_params(summary[0].clone()).unwrap();
        assert_eq!(s[1], params.trades as u64);
        assert!(s[3] > 0, "the seeded feed contains corrupt records");
        assert_eq!(s[2] + s[3], s[1]);
        // The aggregate of one shard carries its totals through.
        let report = (ts[2].logic)(vec![summary[0].clone()]).unwrap();
        let r = decode_params(report[0].clone()).unwrap();
        assert_eq!(r[0], 1);
        assert_eq!(r[1], s[1]);
    }

    #[test]
    fn feed_generation_is_seed_deterministic() {
        let params = quick(ExecEnv::Native);
        assert_eq!(generate_feed(&params, 3), generate_feed(&params, 3));
        assert_ne!(generate_feed(&params, 3), generate_feed(&params, 4));
    }
}
