//! swf-apps: a dynamic workflow application library.
//!
//! Four application workflows with real Rust kernels and calibrated
//! compute models — FINRA-style market-data validation ([`finra`]), ML
//! training ([`mltrain`]), ML inference ([`mlinfer`]) and word-count
//! MapReduce ([`wordcount`]) — each runnable in any of the paper's three
//! execution venues (native, traditional container, serverless) with
//! bitwise-identical outputs.
//!
//! On top of them sits the [`dynamic`] layer: [`dynamic::DynamicWorkflow`]
//! carries Triggerflow-style triggers that fire when a job or stage
//! completes, read the completed node's *real output bytes*, and decide
//! the successor jobs at runtime — validation fan-out from record counts,
//! partition counts from dataset size, reducer fan-in from the expanded
//! mapper set. [`harness::run_app`] drives an app end to end on the full
//! simulated testbed (Pegasus planning, DAGMan execution with optional
//! rescue-DAG resumption, the integrated venue factory and Knative).

#![warn(missing_docs)]

use bytes::Bytes;

use swf_pegasus::Transformation;
use swf_simcore::SimDuration;
use swf_workloads::ExecEnv;

pub mod dynamic;
pub mod finra;
pub mod harness;
pub mod mlinfer;
pub mod mltrain;
pub mod records;
pub mod wordcount;

pub use dynamic::{
    DynamicJob, DynamicReport, DynamicRunConfig, DynamicWorkflow, Expansion, ExpansionStats,
    RoundStats, Trigger, TriggerContext, TriggerOn,
};
pub use harness::{run_app, run_app_with, AppOutcome, AppRun};

/// Calibrated compute model: a fixed startup cost (milliseconds) plus a
/// per-unit rate (microseconds per record/cell/word). All app kernels
/// derive their modelled single-core time this way.
pub fn calibrated(base_ms: f64, per_unit_us: f64, units: usize) -> SimDuration {
    SimDuration::from_secs_f64(base_ms / 1e3 + per_unit_us * units as f64 / 1e6)
}

/// The four applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AppKind {
    /// FINRA-style market-data validation (high fan-out validate/aggregate).
    Finra,
    /// ML training (partition → featurize → train shards → merge).
    MlTrain,
    /// ML inference (preprocess → batch predict → postprocess).
    MlInfer,
    /// Word-count MapReduce (split → map → shuffle → reduce).
    WordCount,
}

impl AppKind {
    /// Every application, in canonical order.
    pub const ALL: [AppKind; 4] = [
        AppKind::Finra,
        AppKind::MlTrain,
        AppKind::MlInfer,
        AppKind::WordCount,
    ];

    /// Stable lowercase label (file names, scenario names, JSON keys).
    pub fn label(self) -> &'static str {
        match self {
            AppKind::Finra => "finra",
            AppKind::MlTrain => "mltrain",
            AppKind::MlInfer => "mlinfer",
            AppKind::WordCount => "wordcount",
        }
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Everything needed to run one application: catalog entries, generated
/// inputs, the dynamic workflow and the file the answer lands in.
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// Transformations to register in the Pegasus catalog (and as Knative
    /// services for the serverless venue).
    pub transformations: Vec<Transformation>,
    /// Generated input files to stage on the shared filesystem.
    pub inputs: Vec<(String, Bytes)>,
    /// The dynamic workflow (initial jobs + triggers).
    pub workflow: dynamic::DynamicWorkflow,
    /// The final output file the app's answer lands in.
    pub final_output: String,
}

/// Build an application spec at quick or paper scale.
pub fn build_app(kind: AppKind, env: ExecEnv, seed: u64, quick: bool) -> AppSpec {
    match kind {
        AppKind::Finra => {
            let p = if quick {
                finra::quick(env)
            } else {
                finra::paper(env)
            };
            finra::spec(&p, seed)
        }
        AppKind::MlTrain => {
            let p = if quick {
                mltrain::quick(env)
            } else {
                mltrain::paper(env)
            };
            mltrain::spec(&p, seed)
        }
        AppKind::MlInfer => {
            let p = if quick {
                mlinfer::quick(env)
            } else {
                mlinfer::paper(env)
            };
            mlinfer::spec(&p, seed)
        }
        AppKind::WordCount => {
            let p = if quick {
                wordcount::quick(env)
            } else {
                wordcount::paper(env)
            };
            wordcount::spec(&p, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_stable() {
        let labels: std::collections::BTreeSet<_> =
            AppKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), AppKind::ALL.len());
        assert_eq!(AppKind::Finra.to_string(), "finra");
    }

    #[test]
    fn every_app_builds_a_spec_with_triggers() {
        for kind in AppKind::ALL {
            let spec = build_app(kind, ExecEnv::Native, 1, true);
            assert!(!spec.transformations.is_empty(), "{kind}");
            assert!(!spec.inputs.is_empty(), "{kind}");
            assert!(!spec.workflow.initial_jobs().is_empty(), "{kind}");
            assert!(spec.workflow.triggers().len() >= 2, "{kind}");
            assert!(!spec.final_output.is_empty(), "{kind}");
        }
    }

    #[test]
    fn calibrated_scales_linearly() {
        assert_eq!(calibrated(10.0, 0.0, 0), SimDuration::from_secs_f64(0.01));
        assert_eq!(
            calibrated(0.0, 2.0, 100),
            SimDuration::from_secs_f64(0.0002)
        );
    }
}
