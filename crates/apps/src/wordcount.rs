//! Word-count MapReduce: split → map → shuffle → reduce → merge. The
//! mapper count is decided at runtime from the word count of the cleaned
//! corpus; each mapper partitions its counts into `reducers` buckets by
//! word hash, and each reducer's fan-in therefore also depends on the
//! data (one input file per expanded mapper).
//!
//! The shuffle is encoded in the file graph: mapper `i` writes one bucket
//! file per reducer, and reducer `j` reads bucket `j` of every mapper.

use std::collections::BTreeMap;

use bytes::Bytes;

use swf_pegasus::{AbstractJob, Transformation};
use swf_simcore::DetRng;
use swf_workloads::ExecEnv;

use crate::dynamic::{DynamicJob, DynamicWorkflow, Expansion, TriggerOn};
use crate::records::{decode_counts, decode_params, encode_counts, encode_params, fnv1a};
use crate::{calibrated, AppSpec};

/// Word-count workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct WordCountParams {
    /// Words in the corpus (the input-size knob).
    pub words: usize,
    /// Words per map task.
    pub words_per_map: usize,
    /// Reducer count (fixed; mapper count is data-derived).
    pub reducers: usize,
    /// Venue every job runs in.
    pub env: ExecEnv,
}

/// Quick scale: 4 mappers × 3 reducers.
pub fn quick(env: ExecEnv) -> WordCountParams {
    WordCountParams {
        words: 400,
        words_per_map: 100,
        reducers: 3,
        env,
    }
}

/// Paper scale: 16 mappers × 4 reducers.
pub fn paper(env: ExecEnv) -> WordCountParams {
    WordCountParams {
        words: 8_000,
        words_per_map: 500,
        reducers: 4,
        env,
    }
}

const CORPUS: &str = "wc/corpus.txt";
const CLEAN: &str = "wc/clean.txt";
const COUNTS: &str = "wc/counts.rec";

fn bucket_file(mapper: usize, reducer: usize) -> String {
    format!("wc/m{mapper:03}_r{reducer:02}.rec")
}

fn reduced_file(reducer: usize) -> String {
    format!("wc/red_{reducer:02}.rec")
}

fn param_file(mapper: usize) -> String {
    format!("wc/map_{mapper:03}.param")
}

/// A small vocabulary skewed toward common words, so counts are
/// interesting and collisions across mappers are guaranteed.
const VOCAB: [&str; 24] = [
    "the",
    "of",
    "and",
    "to",
    "in",
    "workflow",
    "task",
    "serverless",
    "cluster",
    "function",
    "container",
    "node",
    "pod",
    "scale",
    "queue",
    "latency",
    "startup",
    "knative",
    "condor",
    "pegasus",
    "dagman",
    "trigger",
    "expand",
    "merge",
];

/// Generate the corpus: whitespace-separated words drawn from [`VOCAB`]
/// with a Zipf-ish skew.
pub fn generate_corpus(params: &WordCountParams, seed: u64) -> Vec<(String, Bytes)> {
    let mut rng = DetRng::new(seed, "wordcount-corpus");
    let mut text = String::new();
    for i in 0..params.words {
        if i > 0 {
            text.push(' ');
        }
        // Skew: half the draws come from the first quarter of the vocab.
        let idx = if rng.chance(0.5) {
            rng.index(VOCAB.len() / 4)
        } else {
            rng.index(VOCAB.len())
        };
        text.push_str(VOCAB[idx]);
    }
    vec![(CORPUS.to_string(), Bytes::from(text))]
}

fn corpus_words(data: &Bytes) -> Result<Vec<String>, String> {
    let text = std::str::from_utf8(data).map_err(|_| "corpus is not UTF-8".to_string())?;
    Ok(text.split_whitespace().map(str::to_string).collect())
}

fn merge_tables(inputs: &[Bytes]) -> Result<BTreeMap<String, u64>, String> {
    let mut merged = BTreeMap::new();
    for payload in inputs {
        for (word, n) in decode_counts(payload.clone())? {
            *merged.entry(word).or_insert(0) += n;
        }
    }
    Ok(merged)
}

/// The transformations. `wc-map` produces `reducers` outputs per
/// invocation (the shuffle buckets), so the transformation is built for a
/// specific reducer count.
pub fn transformations(params: &WordCountParams) -> Vec<Transformation> {
    let image = swf_core::ExperimentConfig::image_name();
    let reducers = params.reducers;
    let split = Transformation::new("wc-split", calibrated(20.0, 0.6, params.words), |inputs| {
        let words = corpus_words(&inputs[0])?;
        if words.is_empty() {
            return Err("split: empty corpus".into());
        }
        Ok(vec![Bytes::from(words.join(" "))])
    })
    .with_container(image);
    let map = Transformation::new(
        "wc-map",
        calibrated(15.0, 3.0, params.words_per_map),
        move |inputs| {
            let words = corpus_words(&inputs[0])?;
            let p = decode_params(inputs[1].clone())?;
            let [_, start, end] = p[..] else {
                return Err("map: want [mapper, start, end] params".into());
            };
            let slice = words
                .get(start as usize..end as usize)
                .ok_or("map: word range outside corpus")?;
            let mut buckets: Vec<BTreeMap<String, u64>> = vec![BTreeMap::new(); reducers];
            for word in slice {
                let b = (fnv1a(word.as_bytes()) % reducers as u64) as usize;
                *buckets[b].entry(word.clone()).or_insert(0) += 1;
            }
            Ok(buckets.iter().map(encode_counts).collect())
        },
    )
    .with_container(image);
    let reduce = Transformation::new(
        "wc-reduce",
        calibrated(18.0, 1.5, params.words / params.reducers.max(1)),
        |inputs| Ok(vec![encode_counts(&merge_tables(&inputs)?)]),
    )
    .with_container(image);
    let merge = Transformation::new(
        "wc-merge",
        calibrated(22.0, 0.9, VOCAB.len() * 4),
        |inputs| Ok(vec![encode_counts(&merge_tables(&inputs)?)]),
    )
    .with_container(image);
    vec![split, map, reduce, merge]
}

/// Build the dynamic workflow: static split, runtime map fan-out, a
/// reduce stage whose fan-in follows the expanded mapper count, and the
/// final merge.
pub fn workflow(params: &WordCountParams) -> DynamicWorkflow {
    let env = params.env;
    let per_map = params.words_per_map;
    let reducers = params.reducers;
    let mut dwf = DynamicWorkflow::new("wordcount");
    dwf.add_job(
        AbstractJob {
            name: "split".into(),
            transformation: "wc-split".into(),
            inputs: vec![CORPUS.into()],
            outputs: vec![CLEAN.into()],
            env,
        },
        "split",
    );
    dwf.add_trigger(
        "fanout-map",
        TriggerOn::JobDone("split".into()),
        move |ctx| {
            let clean = ctx
                .outputs
                .get(CLEAN)
                .ok_or("fanout-map: clean corpus missing")?;
            let words = corpus_words(clean)?.len();
            let mappers = words.div_ceil(per_map);
            let mut expansion = Expansion::default();
            for m in 0..mappers {
                let start = m * per_map;
                let end = (start + per_map).min(words);
                expansion.staged.push((
                    param_file(m),
                    encode_params(&[m as u64, start as u64, end as u64]),
                ));
                expansion.jobs.push(DynamicJob {
                    job: AbstractJob {
                        name: format!("map-{m:03}"),
                        transformation: "wc-map".into(),
                        inputs: vec![CLEAN.into(), param_file(m)],
                        outputs: (0..reducers).map(|r| bucket_file(m, r)).collect(),
                        env,
                    },
                    stage: "map".into(),
                });
            }
            Ok(expansion)
        },
    );
    // The reducers' fan-in is data-dependent: one bucket file per expanded
    // mapper, recovered here from the map stage's completed outputs.
    dwf.add_trigger(
        "shuffle-reduce",
        TriggerOn::StageDone("map".into()),
        move |ctx| {
            let mut expansion = Expansion::default();
            for r in 0..reducers {
                let suffix = format!("_r{r:02}.rec");
                let buckets: Vec<String> = ctx
                    .outputs
                    .keys()
                    .filter(|f| f.ends_with(&suffix))
                    .cloned()
                    .collect();
                if buckets.is_empty() {
                    return Err(format!("shuffle-reduce: no buckets for reducer {r}"));
                }
                expansion.jobs.push(DynamicJob {
                    job: AbstractJob {
                        name: format!("reduce-{r:02}"),
                        transformation: "wc-reduce".into(),
                        inputs: buckets,
                        outputs: vec![reduced_file(r)],
                        env,
                    },
                    stage: "reduce".into(),
                });
            }
            Ok(expansion)
        },
    );
    dwf.add_trigger(
        "merge-counts",
        TriggerOn::StageDone("reduce".into()),
        move |ctx| {
            let reduced: Vec<String> = ctx.outputs.keys().cloned().collect();
            let mut expansion = Expansion::default();
            expansion.jobs.push(DynamicJob {
                job: AbstractJob {
                    name: "merge".into(),
                    transformation: "wc-merge".into(),
                    inputs: reduced,
                    outputs: vec![COUNTS.into()],
                    env,
                },
                stage: "merge".into(),
            });
            Ok(expansion)
        },
    );
    dwf
}

/// Assemble the full app spec.
pub fn spec(params: &WordCountParams, seed: u64) -> AppSpec {
    AppSpec {
        name: "wordcount".into(),
        transformations: transformations(params),
        inputs: generate_corpus(params, seed),
        workflow: workflow(params),
        final_output: COUNTS.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::decode_counts;

    #[test]
    fn map_reduce_counts_every_word_exactly_once() {
        let params = quick(ExecEnv::Native);
        let corpus = generate_corpus(&params, 9);
        let ts = transformations(&params);
        let clean = (ts[0].logic)(vec![corpus[0].1.clone()]).unwrap();
        let words = corpus_words(&clean[0]).unwrap();
        assert_eq!(words.len(), params.words);
        // Map the whole corpus as one task, reduce each bucket, merge.
        let p = encode_params(&[0, 0, words.len() as u64]);
        let buckets = (ts[1].logic)(vec![clean[0].clone(), p]).unwrap();
        assert_eq!(buckets.len(), params.reducers);
        let reduced: Vec<_> = buckets
            .iter()
            .map(|b| (ts[2].logic)(vec![b.clone()]).unwrap().remove(0))
            .collect();
        let merged = (ts[3].logic)(reduced).unwrap();
        let counts = decode_counts(merged[0].clone()).unwrap();
        let total: u64 = counts.values().sum();
        assert_eq!(total, params.words as u64);
        // Words land in disjoint hash buckets.
        let per_bucket: usize = buckets
            .iter()
            .map(|b| decode_counts(b.clone()).unwrap().len())
            .sum();
        assert_eq!(per_bucket, counts.len());
    }

    #[test]
    fn corpus_is_seed_deterministic() {
        let params = quick(ExecEnv::Native);
        assert_eq!(generate_corpus(&params, 2), generate_corpus(&params, 2));
        assert_ne!(generate_corpus(&params, 2), generate_corpus(&params, 3));
    }
}
