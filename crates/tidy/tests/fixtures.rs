//! End-to-end fixture tests: every rule exercised against checked-in
//! fixture files (positive hit, waiver, baseline suppression, `--bless`).
//!
//! The `.rs` files under `tests/fixtures/` are linter *inputs*, not
//! compiled code; cargo only builds top-level files in `tests/`.

use std::collections::BTreeSet;
use std::path::PathBuf;

use swf_tidy::rules::{self, scan_file};
use swf_tidy::{bless, run_check, Config, ScanOptions};

fn scan_fixture(source: &str) -> rules::FileScan {
    scan_file("fixture.rs", source, ScanOptions::default())
}

/// The (rule, line) pairs of a scan, for exact assertions.
fn hits(scan: &rules::FileScan) -> BTreeSet<(&'static str, u32)> {
    scan.violations.iter().map(|v| (v.rule, v.line)).collect()
}

fn fixture_root(name: &str) -> Config {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    Config {
        root,
        sim_crates: vec!["sim".into()],
        baseline: "tidy.baseline".into(),
        rng_exempt: Vec::new(),
        check_structure: false,
        arith_paths: Vec::new(),
        metrics_registry: None,
        layers: Vec::new(),
    }
}

#[test]
fn d1_flags_every_real_time_form() {
    let scan = scan_fixture(include_str!("fixtures/d1_real_time.rs"));
    let hits = hits(&scan);
    // Imports: the braced sync import and the plain Instant import.
    assert!(hits.contains(&(rules::REAL_SYNC, 3)), "{hits:?}");
    assert!(hits.contains(&(rules::WALL_CLOCK, 4)), "{hits:?}");
    // Uses: Instant::now, SystemTime::now, thread::spawn/sleep, RwLock.
    assert!(hits.contains(&(rules::WALL_CLOCK, 7)), "{hits:?}");
    assert!(hits.contains(&(rules::WALL_CLOCK, 8)), "{hits:?}");
    assert!(hits.contains(&(rules::REAL_THREAD, 13)), "{hits:?}");
    assert!(hits.contains(&(rules::REAL_THREAD, 14)), "{hits:?}");
    assert!(hits.contains(&(rules::REAL_SYNC, 19)), "{hits:?}");
}

#[test]
fn d2_flags_hash_iteration_but_not_keyed_or_btree_access() {
    let scan = scan_fixture(include_str!("fixtures/d2_map_iter.rs"));
    let hits = hits(&scan);
    let map_iter_lines: BTreeSet<u32> = hits
        .iter()
        .filter(|(r, _)| *r == rules::MAP_ITER)
        .map(|&(_, l)| l)
        .collect();
    // for-loop, .values(), .keys(), HashSet .iter() — and nothing else:
    // the keyed lookup and the BTreeMap iteration stay clean.
    assert_eq!(map_iter_lines, BTreeSet::from([14, 21, 25, 29]), "{hits:?}");
    assert_eq!(hits.len(), 4, "only map-iter findings expected: {hits:?}");
}

#[test]
fn d2_waiver_needs_a_reason() {
    let scan = scan_fixture(include_str!("fixtures/d2_waiver.rs"));
    let hits = hits(&scan);
    // Justified waiver suppresses; bare waiver is itself flagged; the
    // unwaived site still fires.
    assert_eq!(
        hits,
        BTreeSet::from([(rules::WAIVER_REASON, 12), (rules::MAP_ITER, 17)]),
        "{hits:?}"
    );
}

#[test]
fn d3_flags_ambient_randomness_only() {
    let scan = scan_fixture(include_str!("fixtures/d3_ambient_rng.rs"));
    let hits = hits(&scan);
    let rng_lines: BTreeSet<u32> = hits
        .iter()
        .filter(|(r, _)| *r == rules::AMBIENT_RNG)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(rng_lines, BTreeSet::from([4, 9, 13]), "{hits:?}");
    // The seeded DetRng path is clean.
    assert_eq!(hits.len(), 3, "{hits:?}");
}

#[test]
fn d3_exemption_skips_the_rng_implementation_itself() {
    let scan = scan_file(
        "fixture.rs",
        include_str!("fixtures/d3_ambient_rng.rs"),
        ScanOptions {
            check_ambient_rng: false,
            ..ScanOptions::default()
        },
    );
    assert!(scan.violations.is_empty());
}

#[test]
fn a_rules_flag_live_guards_across_awaits_only() {
    let scan = scan_fixture(include_str!("fixtures/a_await_borrow.rs"));
    let hits = hits(&scan);
    // The named guard and the same-statement temporary fire; the dropped,
    // scoped, value-extracted, and waived forms stay clean.
    assert_eq!(
        hits,
        BTreeSet::from([(rules::AWAIT_BORROW, 8), (rules::AWAIT_BORROW, 13)]),
        "{hits:?}"
    );
}

#[test]
fn d4_flags_partial_cmp_sorts_and_hash_ordered_float_reductions() {
    let scan = scan_fixture(include_str!("fixtures/d4_float.rs"));
    let hits = hits(&scan);
    assert!(hits.contains(&(rules::PARTIAL_CMP_SORT, 12)), "{hits:?}");
    assert!(hits.contains(&(rules::FLOAT_ACCUM, 21)), "{hits:?}");
    assert!(hits.contains(&(rules::FLOAT_ACCUM, 27)), "{hits:?}");
    // The BTreeMap reduction is clean under D4.
    let d4: Vec<_> = hits
        .iter()
        .filter(|(r, _)| *r == rules::FLOAT_ACCUM || *r == rules::PARTIAL_CMP_SORT)
        .collect();
    assert_eq!(d4.len(), 3, "{hits:?}");
}

#[test]
fn c_rules_flag_truncation_and_unchecked_size_arithmetic_when_gated_in() {
    let scan = scan_file(
        "crates/sim/src/codec.rs",
        include_str!("fixtures/c_arith.rs"),
        ScanOptions {
            check_arith: true,
            ..ScanOptions::default()
        },
    );
    let hits = hits(&scan);
    assert_eq!(
        hits,
        BTreeSet::from([(rules::TRUNC_CAST, 6), (rules::UNCHECKED_ARITH, 10)]),
        "{hits:?}"
    );
    // Outside the gated paths the C-rules do not apply at all.
    let ungated = scan_fixture(include_str!("fixtures/c_arith.rs"));
    assert!(ungated.violations.is_empty(), "{:?}", ungated.violations);
}

#[test]
fn metric_registry_round_trip_flags_unknown_dead_and_unprefixed_names() {
    let mut config = fixture_root("miniroot_metrics");
    config.metrics_registry = Some("metrics.registry".into());
    let report = run_check(&config).unwrap();
    let hits: Vec<(&str, &str, u32)> = report
        .violations
        .iter()
        .map(|v| (v.rule, v.file.as_str(), v.line))
        .collect();
    assert_eq!(
        hits,
        vec![
            (rules::METRIC_UNKNOWN, "crates/sim/src/lib.rs", 5),
            (rules::METRIC_PREFIX, "crates/sim/src/lib.rs", 6),
            (rules::METRIC_DEAD, "metrics.registry", 3),
        ],
        "{:?}",
        report.violations
    );
}

#[test]
fn layering_flags_the_upward_edge_only() {
    let mut config = fixture_root("miniroot_layers");
    config.sim_crates = vec!["low".into(), "high".into()];
    config.layers = vec![vec!["low".into()], vec!["high".into()]];
    let report = run_check(&config).unwrap();
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, rules::LAYERING);
    assert_eq!(v.file, "crates/low/src/lib.rs");
    assert_eq!(v.line, 4);
    assert!(v.message.contains("strictly downward"), "{}", v.message);
}

#[test]
fn r1_counts_non_test_sites_only() {
    let scan = scan_fixture(include_str!("fixtures/r1_unwraps.rs"));
    assert!(scan.violations.is_empty(), "{:?}", scan.violations);
    // unwrap + expect + panic!; the test-module sites and the domain
    // `self.expect` are exempt.
    assert_eq!(scan.unwrap_lines, vec![5, 6, 8]);
    assert_eq!(scan.unwrap_count, 3);
}

#[test]
fn clean_fixture_is_clean() {
    let scan = scan_fixture(include_str!("fixtures/clean.rs"));
    assert!(scan.violations.is_empty(), "{:?}", scan.violations);
    assert_eq!(scan.unwrap_count, 0);
}

#[test]
fn baseline_suppresses_known_debt() {
    let report = run_check(&fixture_root("miniroot")).unwrap();
    assert!(report.ok(), "{:?}", report.violations);
    assert_eq!(report.files_scanned, 1);
    assert_eq!(report.unwrap_total, 2);
}

#[test]
fn exceeding_the_baseline_fails_with_a_pointed_diagnostic() {
    let mut config = fixture_root("miniroot");
    config.baseline = "tight.baseline".into();
    let report = run_check(&config).unwrap();
    assert_eq!(report.violations.len(), 1);
    let v = &report.violations[0];
    assert_eq!(v.rule, rules::UNWRAP);
    assert_eq!(v.file, "crates/sim/src/lib.rs");
    assert!(v.message.contains("2 panic-family sites"), "{}", v.message);
    assert!(v.message.contains("allows 1"), "{}", v.message);
}

#[test]
fn shrinking_below_the_baseline_demands_a_ratchet() {
    let mut config = fixture_root("miniroot");
    config.baseline = "loose.baseline".into();
    let report = run_check(&config).unwrap();
    assert_eq!(report.violations.len(), 1);
    assert!(
        report.violations[0].message.contains("--bless"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn stale_baseline_entries_are_reported() {
    let mut config = fixture_root("miniroot");
    config.baseline = "stale.baseline".into();
    let report = run_check(&config).unwrap();
    assert_eq!(report.violations.len(), 1);
    let v = &report.violations[0];
    assert_eq!(v.file, "crates/sim/src/deleted.rs");
    assert!(v.message.contains("stale"), "{}", v.message);
}

#[test]
fn structural_rules_cover_docs_and_bench_tracing() {
    let mut config = fixture_root("miniroot_bad_structure");
    config.check_structure = true;
    let report = run_check(&config).unwrap();
    let per_rule = |rule: &str| report.violations.iter().filter(|v| v.rule == rule).count();
    // Missing crate docs + missing missing_docs gate, and a bench binary
    // with neither the obs wiring nor the --trace usage text, nor the
    // --json record wiring/usage text.
    assert_eq!(per_rule(rules::CRATE_DOCS), 2, "{:?}", report.violations);
    assert_eq!(per_rule(rules::BENCH_TRACE), 2, "{:?}", report.violations);
    assert_eq!(per_rule(rules::BENCH_JSON), 2, "{:?}", report.violations);
}

#[test]
fn bless_writes_a_baseline_that_makes_the_check_pass() {
    // Copy the miniroot into a scratch dir so blessing never mutates the
    // checked-in fixtures.
    let scratch = std::env::temp_dir().join(format!("swf-tidy-bless-{}", std::process::id()));
    let src_dir = scratch.join("crates/sim/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(scratch.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(
        src_dir.join("lib.rs"),
        include_str!("fixtures/miniroot/crates/sim/src/lib.rs"),
    )
    .unwrap();
    let config = Config {
        root: scratch.clone(),
        sim_crates: vec!["sim".into()],
        baseline: "tidy.baseline".into(),
        rng_exempt: Vec::new(),
        check_structure: false,
        arith_paths: Vec::new(),
        metrics_registry: None,
        layers: Vec::new(),
    };

    // No baseline yet: the two sites overshoot the implicit zero.
    let before = run_check(&config).unwrap();
    assert!(!before.ok());

    let content = bless(&config).unwrap();
    assert!(content.contains("2 crates/sim/src/lib.rs"), "{content}");

    let after = run_check(&config).unwrap();
    assert!(after.ok(), "{:?}", after.violations);

    std::fs::remove_dir_all(&scratch).unwrap();
}
