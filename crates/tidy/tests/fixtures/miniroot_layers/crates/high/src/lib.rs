//! Fixture crate on the top layer depending *downward* — allowed.

use swf_low::Base;

pub fn wrap(b: Base) -> Base {
    b
}
