//! Fixture crate on the bottom layer reaching *upward* — the L-rule must
//! flag the `swf_high` reference as an inverted dependency edge.

use swf_high::Widget;

pub fn build() -> Widget {
    swf_high::make()
}
