// No crate-level docs and no docs gate: two crate-docs findings.

pub fn noop() {}
