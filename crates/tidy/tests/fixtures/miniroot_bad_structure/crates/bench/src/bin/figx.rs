// A bench binary that neither wires the tracing CLI nor documents the
// flags: two bench-trace findings.

fn main() {
    println!("figx");
}
