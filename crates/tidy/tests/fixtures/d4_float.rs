//! Fixture: float determinism (D4) — `partial_cmp` comparators and float
//! reductions over hash-ordered sources, next to the allowed forms.

use std::collections::{BTreeMap, HashMap};

struct Metrics {
    samples: HashMap<String, f64>,
    ordered: BTreeMap<String, f64>,
}

fn bad_sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn good_sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}

impl Metrics {
    fn bad_sum(&self) -> f64 {
        self.samples.values().sum::<f64>()
    }

    fn bad_loop(&self) -> f64 {
        let mut acc = 0.0;
        for v in self.samples.values() {
            acc += v * 2.0;
        }
        acc
    }

    fn ok_btree_sum(&self) -> f64 {
        self.ordered.values().sum::<f64>()
    }
}
