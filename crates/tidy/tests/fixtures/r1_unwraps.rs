//! Fixture: panic-family sites in non-test code (counted) and in test
//! code (exempt).

fn three_sites(x: Option<u32>, y: Result<u32, String>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("y must be set");
    if a + b == 0 {
        panic!("zero");
    }
    a + b
}

struct Parser;

impl Parser {
    fn expect(&self, _tok: u8) -> bool {
        true
    }

    fn domain_expect_is_not_counted(&self) -> bool {
        self.expect(b'(')
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_tests_are_free() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: Result<u32, ()> = Ok(2);
        assert_eq!(r.expect("ok"), 2);
    }
}
