//! Fixture: a file the linter should pass without a single finding.

use std::collections::BTreeMap;

fn deterministic_sum(counts: &BTreeMap<String, u64>) -> u64 {
    counts.values().sum()
}

fn typed_errors(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing".to_string())
}
