//! Fixture: HashMap/HashSet iteration (D2 hits) next to the allowed forms.

use std::collections::{BTreeMap, HashMap, HashSet};

struct State {
    index: HashMap<String, u64>,
    seen: HashSet<u64>,
    ordered: BTreeMap<String, u64>,
}

impl State {
    fn bad_for_loop(&self) -> u64 {
        let mut sum = 0;
        for (_k, v) in &self.index {
            sum += v;
        }
        sum
    }

    fn bad_chain(&self) -> Vec<u64> {
        self.index.values().copied().collect()
    }

    fn bad_keys(&self) -> Vec<String> {
        self.index.keys().cloned().collect()
    }

    fn bad_set_iter(&self) -> u64 {
        self.seen.iter().sum()
    }

    fn ok_keyed_lookup(&self) -> Option<u64> {
        self.index.get("x").copied()
    }

    fn ok_btree_iteration(&self) -> u64 {
        self.ordered.values().sum()
    }
}
