//! A miniature simulation crate carrying exactly two panic-family sites.

#![warn(missing_docs)]

/// Two counted sites, nothing else.
pub fn two_sites(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b: Result<u32, ()> = Ok(1);
    a + b.expect("always ok")
}
