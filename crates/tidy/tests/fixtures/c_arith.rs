//! Fixture: checked arithmetic (C-rules) — truncating casts and unchecked
//! size arithmetic as they appear in wire-format encoders, next to the
//! checked forms.

fn bad_trunc_cast(buf: &mut Vec<u8>, payload: &[u8]) {
    put_u32_le(buf, payload.len() as u32);
}

fn bad_capacity_math(items: &[u64]) -> Vec<u8> {
    Vec::with_capacity(8 + items.len() * 8)
}

fn good_checked_cast(buf: &mut Vec<u8>, payload: &[u8]) {
    put_u32_le(buf, u32::try_from(payload.len()).unwrap_or(u32::MAX));
}

fn good_saturating_math(items: &[u64]) -> Vec<u8> {
    Vec::with_capacity(items.len().saturating_mul(8).saturating_add(8))
}

fn ok_widening_cast(payload: &[u8]) -> u64 {
    payload.len() as u64
}
