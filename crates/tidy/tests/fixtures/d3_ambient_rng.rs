//! Fixture: ambient randomness outside the seeded simulation RNG.

fn bad_thread_rng() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn bad_free_random() -> f64 {
    rand::random::<f64>()
}

fn bad_random_state() {
    let _ = std::collections::hash_map::RandomState::new();
}

fn ok_seeded() -> u64 {
    let mut rng = swf_simcore::DetRng::new(42, "fixture");
    rng.next_u64()
}
