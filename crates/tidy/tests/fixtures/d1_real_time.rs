//! Fixture: every flavour of D1 violation (wall clock, threads, real sync).

use std::sync::{Arc, Mutex};
use std::time::Instant;

fn wall_clock() -> f64 {
    let t0 = Instant::now(); // wall-clock (via the use above and here)
    let _ = std::time::SystemTime::now(); // wall-clock, fully qualified
    t0.elapsed().as_secs_f64()
}

fn real_thread() {
    std::thread::spawn(|| {}); // real-thread
    std::thread::sleep(std::time::Duration::from_secs(1)); // real-thread + wall-clock path
}

fn real_sync() {
    let m = Arc::new(Mutex::new(0u32)); // real-sync (via the use above)
    let _ = std::sync::RwLock::new(0u32); // real-sync, fully qualified
    drop(m);
}
