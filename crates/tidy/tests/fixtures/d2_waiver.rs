//! Fixture: map-iter waivers — one properly justified, one missing its
//! reason (which is itself a violation).

use std::collections::HashMap;

fn waived(counts: &HashMap<String, u64>) -> u64 {
    // tidy: allow(map-iter) — summation is order-independent
    counts.values().sum()
}

fn waived_without_reason(counts: &HashMap<String, u64>) -> u64 {
    // tidy: allow(map-iter)
    counts.values().sum()
}

fn not_waived(counts: &HashMap<String, u64>) -> Vec<String> {
    counts.keys().cloned().collect()
}
