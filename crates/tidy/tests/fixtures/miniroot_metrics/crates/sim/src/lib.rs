//! Fixture crate: metric emission sites for the M-rule registry check.

fn emit(obs: &Obs) {
    obs.counter_add("sim.ticks", 1);
    obs.counter_add("sim.not_registered", 1);
    obs.gauge_set("plainname", 2.0);
}
