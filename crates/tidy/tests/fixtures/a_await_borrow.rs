//! Fixture: RefCell borrows and lock guards held across `.await` (A-rules)
//! next to the clean forms the analyzer must not flag.

use std::cell::RefCell;

async fn bad_named_guard(cell: &RefCell<u32>) {
    let g = cell.borrow_mut();
    tick().await;
    drop(g);
}

async fn bad_same_statement_temporary(cell: &RefCell<u32>) {
    send(*cell.borrow()).await;
}

async fn ok_dropped_first(cell: &RefCell<u32>) {
    let g = cell.borrow_mut();
    drop(g);
    tick().await;
}

async fn ok_inner_scope(cell: &RefCell<Vec<u32>>) {
    {
        let mut g = cell.borrow_mut();
        g.push(1);
    }
    tick().await;
}

async fn ok_value_extracted(cell: &RefCell<Vec<u32>>) {
    let n = cell.borrow().len();
    handle(n).await;
}

async fn waived_guard(cell: &RefCell<u32>) {
    let g = cell.borrow_mut();
    // tidy: allow(await-borrow) — single-task section: nothing else polls here
    tick().await;
    drop(g);
}
