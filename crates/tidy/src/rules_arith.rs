//! C-rules: checked arithmetic on size expressions. Scoped to
//! codec/records/registry-style paths (see `Config::arith_paths`), where a
//! length feeds a wire format: PR 6 fixed a real `(2³²−1)²` overflow in
//! exactly this class, and these rules keep the class extinct.
//!
//! - `trunc-cast`: `… .len() … as u32` (or `u16`/`u8`) silently truncates
//!   on huge inputs — use `u32::try_from(len)` and surface the error.
//! - `unchecked-arith`: `a.len() * b` / `a.len() + b` can overflow `usize`
//!   arithmetic before any bound check runs — use `checked_mul`/
//!   `checked_add` (decode paths) or `saturating_*` (capacity hints).

use crate::lexer::{Lexed, TokenKind};
use crate::rules::{TRUNC_CAST, UNCHECKED_ARITH};

/// Identifiers that mark a value as a length/size/byte-count.
const SIZE_IDENTS: &[&str] = &["len", "size", "count", "capacity"];

fn is_size_ident(text: &str) -> bool {
    SIZE_IDENTS.contains(&text)
        || text.ends_with("_len")
        || text.starts_with("len_")
        || text.ends_with("_size")
        || text.ends_with("_count")
        || text.ends_with("_bytes")
}

/// Scan one file for C-rule violations.
pub fn scan_arith(lexed: &Lexed, emit: &mut dyn FnMut(&'static str, u32, String)) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        // C1: `<expr mentioning a size> as u8|u16|u32`.
        if lexed.is_ident(i, "as") {
            let Some(target) = toks.get(i + 1) else {
                continue;
            };
            if target.kind == TokenKind::Ident
                && matches!(target.text.as_str(), "u8" | "u16" | "u32")
                && expr_before_mentions_size(lexed, i)
            {
                emit(
                    TRUNC_CAST,
                    toks[i].line,
                    format!(
                        "truncating `as {}` on a length/size expression — silently wraps \
                         on huge inputs; use `{}::try_from(..)` and surface the error",
                        target.text, target.text
                    ),
                );
            }
        }

        // C2: `.len() *` / `.len() +` (and the mirrored `* x.len()`).
        let t = &toks[i];
        if t.kind == TokenKind::Punct && (t.text == "*" || t.text == "+") {
            // `*` as deref / `+` in generic bounds never follow `)`.
            let op = t.text.clone();
            let follows_size_call = i >= 3
                && lexed.is_punct(i - 1, ")")
                && lexed.is_punct(i - 2, "(")
                && toks
                    .get(i - 3)
                    .is_some_and(|t| t.kind == TokenKind::Ident && is_size_ident(&t.text));
            let precedes_size_call = (1..=4).any(|d| {
                toks.get(i + d)
                    .is_some_and(|t| t.kind == TokenKind::Ident && is_size_ident(&t.text))
                    && lexed.is_punct(i + d + 1, "(")
                    && lexed.is_punct(i + d + 2, ")")
            });
            if follows_size_call || precedes_size_call {
                let (checked, saturating) = if op == "*" {
                    ("checked_mul", "saturating_mul")
                } else {
                    ("checked_add", "saturating_add")
                };
                emit(
                    UNCHECKED_ARITH,
                    t.line,
                    format!(
                        "unchecked `{op}` on a length expression — can overflow before \
                         any bound check runs; use `{checked}` (decode paths) or \
                         `{saturating}` (capacity hints)"
                    ),
                );
            }
        }
    }
}

/// Walk back from the `as` at token `i` to the start of the cast operand
/// (bounded) looking for a size-ish identifier.
fn expr_before_mentions_size(lexed: &Lexed, i: usize) -> bool {
    let toks = &lexed.tokens;
    let mut j = i;
    let mut budget = 16;
    let mut depth = 0i32; // counts closers seen walking backwards
    while j > 0 && budget > 0 {
        j -= 1;
        budget -= 1;
        let t = &toks[j];
        match t.text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    return false; // left the operand expression
                }
                depth -= 1;
            }
            ";" | "=" | "," | "{" | "}" => {
                if depth == 0 {
                    return false;
                }
            }
            _ => {
                if t.kind == TokenKind::Ident && is_size_ident(&t.text) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn hits(src: &str) -> Vec<(&'static str, u32)> {
        let lexed = lex(src);
        let mut out = Vec::new();
        scan_arith(&lexed, &mut |rule, line, _| out.push((rule, line)));
        out
    }

    #[test]
    fn len_as_u32_flagged() {
        assert_eq!(
            hits("fn f(v: &[u8]) -> u32 { v.len() as u32 }"),
            vec![(TRUNC_CAST, 1)]
        );
    }

    #[test]
    fn len_as_u64_is_fine() {
        // usize → u64 never truncates on supported targets.
        assert!(hits("fn f(v: &[u8]) -> u64 { v.len() as u64 }").is_empty());
    }

    #[test]
    fn non_size_cast_is_fine() {
        assert!(hits("fn f(x: char) -> u32 { x as u32 }").is_empty());
    }

    #[test]
    fn try_from_is_the_clean_form() {
        assert!(hits("fn f(v: &[u8]) -> Option<u32> { u32::try_from(v.len()).ok() }").is_empty());
    }

    #[test]
    fn len_times_constant_flagged() {
        assert_eq!(
            hits("fn f(v: &[u8]) -> usize { v.len() * 24 }"),
            vec![(UNCHECKED_ARITH, 1)]
        );
    }

    #[test]
    fn constant_times_len_flagged() {
        assert_eq!(
            hits("fn f(v: &[u8]) -> usize { 24 * v.len() }"),
            vec![(UNCHECKED_ARITH, 1)]
        );
    }

    #[test]
    fn len_plus_header_flagged() {
        assert_eq!(
            hits("fn f(v: &[u8]) -> usize { v.len() + 8 }"),
            vec![(UNCHECKED_ARITH, 1)]
        );
    }

    #[test]
    fn checked_and_saturating_are_clean() {
        assert!(hits("fn f(v: &[u8]) -> Option<usize> { v.len().checked_mul(24) }").is_empty());
        assert!(hits("fn f(v: &[u8]) -> usize { v.len().saturating_add(8) }").is_empty());
    }

    #[test]
    fn derived_size_names_count() {
        assert_eq!(
            hits("fn f(row_len: usize) -> u32 { row_len as u32 }"),
            vec![(TRUNC_CAST, 1)]
        );
    }

    #[test]
    fn generic_bounds_plus_is_not_arith() {
        assert!(hits("fn f<T: Clone + Send>(x: T) -> T { x }").is_empty());
    }
}
