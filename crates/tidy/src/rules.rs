//! The rule engine: determinism (D) and robustness (R) token-pattern
//! rules, plus structural (S) checks over the workspace layout.
//!
//! Rule names double as waiver keys: a violation of rule `map-iter` is
//! suppressed by `// tidy: allow(map-iter) — <reason>` on the same line or
//! the line(s) directly above. A waiver without a reason is itself a
//! violation — the contract is "explain the exception", not "silence it".

use std::collections::BTreeSet;

use crate::context::FileContext;
use crate::lexer::{lex, Lexed, TokenKind};

/// D1: no wall-clock time sources in simulation crates.
pub const WALL_CLOCK: &str = "wall-clock";
/// D1: no OS threads in simulation crates.
pub const REAL_THREAD: &str = "real-thread";
/// D1: no blocking sync primitives in simulation crates.
pub const REAL_SYNC: &str = "real-sync";
/// D2: no iteration over hash-ordered collections in simulation crates.
pub const MAP_ITER: &str = "map-iter";
/// D3: no ambient (unseeded) randomness outside `swf-simcore::rng`.
pub const AMBIENT_RNG: &str = "ambient-rng";
/// R1: `unwrap()/expect()/panic!` sites are counted against a baseline.
pub const UNWRAP: &str = "unwrap";
/// S1: every crate gates `missing_docs` and has crate-level docs.
pub const CRATE_DOCS: &str = "crate-docs";
/// S2: every bench binary wires the uniform `--trace` flags.
pub const BENCH_TRACE: &str = "bench-trace";
/// S3: every bench binary wires the uniform `--json` record flag.
pub const BENCH_JSON: &str = "bench-json";
/// A1: no `.await` while a `RefCell` borrow / lock guard is live.
pub const AWAIT_BORROW: &str = "await-borrow";
/// D4: no float accumulation over hash-ordered iterators.
pub const FLOAT_ACCUM: &str = "float-accum";
/// D4: no `partial_cmp` comparators in sorts — use `total_cmp`.
pub const PARTIAL_CMP_SORT: &str = "partial-cmp-sort";
/// C1: no truncating `as` casts on length/size expressions.
pub const TRUNC_CAST: &str = "trunc-cast";
/// C2: no unchecked `*`/`+` on length/size expressions.
pub const UNCHECKED_ARITH: &str = "unchecked-arith";
/// M1: every emitted metric name must appear in `metrics.registry`.
pub const METRIC_UNKNOWN: &str = "metric-unknown";
/// M2: every `metrics.registry` entry must be emitted somewhere.
pub const METRIC_DEAD: &str = "metric-dead";
/// M3: metric names carry a dot-separated subsystem prefix.
pub const METRIC_PREFIX: &str = "metric-prefix";
/// L1: cross-crate dependencies must respect the declared layer order.
pub const LAYERING: &str = "layering";
/// Meta-rule: a waiver comment must carry a reason.
pub const WAIVER_REASON: &str = "waiver-reason";

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (doubles as the waiver key).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable diagnostic.
    pub message: String,
}

impl Violation {
    /// Render as `file:line: [rule] message` (the non-JSON output format).
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Methods whose receiver order leaks into program behaviour when called
/// on a hash-ordered collection.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Chain links that preserve "this is still the same collection": a hash
/// map reached through these still iterates in hash order.
const PASSTHROUGH_METHODS: &[&str] = &["borrow", "borrow_mut", "clone", "as_ref", "as_mut", "lock"];

/// Scan one simulation-crate source file (already lexed) and return every
/// D-rule finding plus the R1 unwrap count. `rel_path` is workspace
/// relative and used verbatim in diagnostics.
pub struct FileScan {
    /// Non-waived D-rule violations (plus waiver-reason findings).
    pub violations: Vec<Violation>,
    /// Number of non-test `unwrap()/expect()/panic!`-family sites that are
    /// not individually waived (compared against the baseline by the
    /// caller).
    pub unwrap_count: usize,
    /// Lines of the counted R1 sites (for `--list-unwraps` style output
    /// and pointed diagnostics when a file exceeds its baseline).
    pub unwrap_lines: Vec<u32>,
    /// Literal metric names emitted by this file (input to the M-rule
    /// registry cross-check, which needs the whole-tree view).
    pub metric_uses: Vec<crate::rules_metrics::MetricUse>,
}

/// Options controlling which rule families apply to a file.
#[derive(Clone, Copy, Debug)]
pub struct ScanOptions {
    /// Apply D3 (the one file implementing the seeded RNG is exempt).
    pub check_ambient_rng: bool,
    /// Apply the C-rules (checked arithmetic) — gated to codec/records/
    /// registry-style paths where size arithmetic feeds wire formats.
    pub check_arith: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            check_ambient_rng: true,
            check_arith: false,
        }
    }
}

/// Run the token-pattern rules over one file.
pub fn scan_file(rel_path: &str, source: &str, opts: ScanOptions) -> FileScan {
    let lexed = lex(source);
    let ctx = FileContext::build(&lexed);
    let mut violations = Vec::new();

    let push = |rule: &'static str, line: u32, message: String, out: &mut Vec<Violation>| {
        if ctx.is_test_line(line) {
            return;
        }
        match ctx.is_waived(rule, line) {
            Some(w) if w.has_reason => {}
            Some(w) => out.push(Violation {
                rule: WAIVER_REASON,
                file: rel_path.to_string(),
                line: w.line,
                message: format!(
                    "waiver `tidy: allow({rule})` needs a reason: \
                     `// tidy: allow({rule}) — <why this is sound>`"
                ),
            }),
            None => out.push(Violation {
                rule,
                file: rel_path.to_string(),
                line,
                message,
            }),
        }
    };

    scan_d1(&lexed, &mut |rule, line, msg| {
        push(rule, line, msg, &mut violations)
    });
    scan_map_iter(&lexed, &mut |rule, line, msg| {
        push(rule, line, msg, &mut violations)
    });
    if opts.check_ambient_rng {
        scan_ambient_rng(&lexed, &mut |rule, line, msg| {
            push(rule, line, msg, &mut violations)
        });
    }
    crate::rules_async::scan_await_borrow(&lexed, &mut |line, msg| {
        push(AWAIT_BORROW, line, msg, &mut violations)
    });
    crate::rules_float::scan_float(&lexed, &mut |rule, line, msg| {
        push(rule, line, msg, &mut violations)
    });
    if opts.check_arith {
        crate::rules_arith::scan_arith(&lexed, &mut |rule, line, msg| {
            push(rule, line, msg, &mut violations)
        });
    }
    let metric_uses = crate::rules_metrics::scan_metrics(&lexed, &ctx, &mut |rule, line, msg| {
        push(rule, line, msg, &mut violations)
    });

    let mut unwrap_lines = Vec::new();
    scan_unwraps(&lexed, &mut |line| {
        if !ctx.is_test_line(line) && ctx.is_waived(UNWRAP, line).is_none() {
            unwrap_lines.push(line);
        }
    });

    // A single construct can trip two passes of the same rule (e.g. a
    // `for` loop whose header also contains `.keys()`); report it once.
    let mut seen = BTreeSet::new();
    violations.retain(|v| seen.insert((v.rule, v.line)));

    FileScan {
        violations,
        unwrap_count: unwrap_lines.len(),
        unwrap_lines,
        metric_uses,
    }
}

/// D1: wall clocks, OS threads, blocking locks.
fn scan_d1(lexed: &Lexed, emit: &mut dyn FnMut(&'static str, u32, String)) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if lexed.matches(i, &["std", ":", ":", "time", ":", ":", "Instant"])
            || lexed.matches(i, &["Instant", ":", ":", "now"])
        {
            emit(
                WALL_CLOCK,
                toks[i].line,
                "wall-clock `Instant` in a simulation crate — use `swf_simcore::now()` \
                 (virtual time) instead"
                    .into(),
            );
        }
        if lexed.matches(i, &["std", ":", ":", "time", ":", ":", "SystemTime"])
            || lexed.matches(i, &["SystemTime", ":", ":", "now"])
        {
            emit(
                WALL_CLOCK,
                toks[i].line,
                "wall-clock `SystemTime` in a simulation crate — use `swf_simcore::now()` \
                 (virtual time) instead"
                    .into(),
            );
        }
        if lexed.matches(i, &["std", ":", ":", "thread"]) {
            emit(
                REAL_THREAD,
                toks[i].line,
                "`std::thread` in a simulation crate — the executor is single-threaded; \
                 use `swf_simcore::spawn` for concurrency"
                    .into(),
            );
        }
        for prim in ["Mutex", "RwLock"] {
            if lexed.matches(i, &["std", ":", ":", "sync", ":", ":", prim]) {
                emit(
                    REAL_SYNC,
                    toks[i].line,
                    format!(
                        "`std::sync::{prim}` in a simulation crate — single-threaded \
                         simulation state belongs in `RefCell`/`Cell`"
                    ),
                );
            }
        }
        // `use std::sync::{..., Mutex, ...}` — flag the braced import form
        // the path patterns above cannot see.
        if lexed.matches(i, &["use", "std", ":", ":", "sync", ":", ":", "{"]) {
            let mut depth = 1;
            let mut j = i + 8;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    "Mutex" | "RwLock" if toks[j].kind == TokenKind::Ident => {
                        emit(
                            REAL_SYNC,
                            toks[j].line,
                            format!(
                                "`std::sync::{}` imported in a simulation crate — \
                                 single-threaded simulation state belongs in `RefCell`/`Cell`",
                                toks[j].text
                            ),
                        );
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if lexed.matches(i, &["use", "std", ":", ":", "time", ":", ":", "{"]) {
            let mut depth = 1;
            let mut j = i + 8;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    "Instant" | "SystemTime" if toks[j].kind == TokenKind::Ident => {
                        emit(
                            WALL_CLOCK,
                            toks[j].line,
                            format!(
                                "wall-clock `{}` imported in a simulation crate — use \
                                 `swf_simcore::now()` (virtual time) instead",
                                toks[j].text
                            ),
                        );
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

/// D3: ambient randomness.
fn scan_ambient_rng(lexed: &Lexed, emit: &mut dyn FnMut(&'static str, u32, String)) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "thread_rng" | "from_entropy" => true,
            "RandomState" | "DefaultHasher" => true,
            "random" => lexed.matches(i.saturating_sub(3), &["rand", ":", ":", "random"]),
            _ => false,
        };
        if hit {
            emit(
                AMBIENT_RNG,
                t.line,
                format!(
                    "ambient randomness `{}` — all randomness must flow from a seeded \
                     `swf_simcore::DetRng`",
                    t.text
                ),
            );
        }
    }
}

/// D2: iteration over hash-ordered collections.
///
/// Two passes: (1) collect the names of bindings, fields and type aliases
/// whose declared type mentions `HashMap`/`HashSet`; (2) flag `for`-loops
/// over those names and method chains from them that reach an
/// order-observing method (`iter`, `keys`, `values`, `drain`, ...).
fn scan_map_iter(lexed: &Lexed, emit: &mut dyn FnMut(&'static str, u32, String)) {
    let toks = &lexed.tokens;
    let hash_names = collect_hash_names(lexed);
    if hash_names.is_empty() {
        return;
    }

    // Pass 2a: `for <pat> in <expr> {` where expr mentions a hash name.
    for i in 0..toks.len() {
        if !lexed.is_ident(i, "for") || lexed.is_punct(i + 1, "<") {
            continue;
        }
        if let Some((name, line)) = for_loop_hash_source(lexed, i, &hash_names) {
            emit(
                MAP_ITER,
                line,
                format!(
                    "`for` loop over hash-ordered `{name}` — iteration order \
                     depends on the hasher; use BTreeMap/BTreeSet or collect \
                     & sort first"
                ),
            );
        }
    }

    // Pass 2b: method chains `name.<passthrough>*.<iter-method>(`.
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || !hash_names.contains(&t.text) {
            continue;
        }
        // Don't re-fire on the declaration site `name: HashMap<...>`.
        if lexed.is_punct(i + 1, ":") {
            continue;
        }
        let mut j = i + 1;
        loop {
            if !lexed.is_punct(j, ".") {
                break;
            }
            let Some(m) = toks.get(j + 1) else { break };
            if m.kind != TokenKind::Ident {
                break;
            }
            if ITER_METHODS.contains(&m.text.as_str()) {
                emit(
                    MAP_ITER,
                    m.line,
                    format!(
                        "`.{}()` on hash-ordered `{}` — iteration order depends on the \
                         hasher; use BTreeMap/BTreeSet or collect & sort first",
                        m.text, t.text
                    ),
                );
                break;
            }
            if !PASSTHROUGH_METHODS.contains(&m.text.as_str()) {
                break;
            }
            // Skip the call parens of the passthrough method.
            let mut k = j + 2;
            if lexed.is_punct(k, "(") {
                let mut depth = 1;
                k += 1;
                while k < toks.len() && depth > 0 {
                    match toks[k].text.as_str() {
                        "(" => depth += 1,
                        ")" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
            }
            j = k;
        }
    }
}

/// If the `for` loop headed at token `i` iterates an expression mentioning
/// one of `hash_names`, return that name and its line.
pub(crate) fn for_loop_hash_source(
    lexed: &Lexed,
    i: usize,
    hash_names: &BTreeSet<String>,
) -> Option<(String, u32)> {
    let toks = &lexed.tokens;
    // Find `in` at depth 0, then scan the iterated expression up to the
    // loop body `{` at depth 0.
    let mut depth = 0i32;
    let mut j = i + 1;
    let mut in_pos = None;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "in" if depth == 0 && toks[j].kind == TokenKind::Ident => {
                in_pos = Some(j);
                break;
            }
            ";" => return None,
            _ => {}
        }
        j += 1;
    }
    let in_pos = in_pos?;
    let mut depth = 0i32;
    let mut j = in_pos + 1;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            "{" if depth == 0 => return None,
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {
                if t.kind == TokenKind::Ident && hash_names.contains(&t.text) {
                    return Some((t.text.clone(), t.line));
                }
            }
        }
        j += 1;
    }
    None
}

/// Collect the names of bindings, fields and type aliases whose declared
/// or constructed type mentions `HashMap`/`HashSet`. Shared by D2
/// (map-iter) and D4 (float-accum).
pub(crate) fn collect_hash_names(lexed: &Lexed) -> BTreeSet<String> {
    let toks = &lexed.tokens;
    let mut hash_types: BTreeSet<String> = ["HashMap", "HashSet"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    // Type aliases: `type X = ... HashMap ... ;`
    for i in 0..toks.len() {
        if lexed.is_ident(i, "type")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            && lexed.is_punct(i + 2, "=")
        {
            let alias = toks[i + 1].text.clone();
            let mut j = i + 3;
            while j < toks.len() && !lexed.is_punct(j, ";") {
                if toks[j].kind == TokenKind::Ident && hash_types.contains(&toks[j].text) {
                    hash_types.insert(alias.clone());
                    break;
                }
                j += 1;
            }
        }
    }

    let mut hash_names: BTreeSet<String> = BTreeSet::new();

    // `name: <type containing a hash type>` — struct fields, fn params,
    // and `let` ascriptions alike.
    for i in 0..toks.len() {
        let is_name = toks[i].kind == TokenKind::Ident
            && lexed.is_punct(i + 1, ":")
            && !lexed.is_punct(i + 2, ":"); // skip paths `a::b`
                                            // Also skip when preceded by ':' (i.e. this is the 2nd ':' of '::').
        let prev_colon = i > 0 && lexed.is_punct(i - 1, ":");
        if !is_name || prev_colon {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < toks.len() {
            let t = &toks[j];
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ";" | "=" => {
                    if depth == 0 {
                        break;
                    }
                }
                "," => {
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if t.kind == TokenKind::Ident && hash_types.contains(&t.text) {
                        hash_names.insert(toks[i].text.clone());
                        break;
                    }
                }
            }
            j += 1;
        }
    }

    // `let [mut] name = ... HashType::... ;`
    for i in 0..toks.len() {
        if !lexed.is_ident(i, "let") {
            continue;
        }
        let mut k = i + 1;
        if lexed.is_ident(k, "mut") {
            k += 1;
        }
        if toks.get(k).map(|t| t.kind) != Some(TokenKind::Ident) {
            continue;
        }
        let name = toks[k].text.clone();
        // Find `=` then scan rhs until `;` for `HashType ::`.
        let mut j = k + 1;
        let mut depth = 0i32;
        while j < toks.len() && !(depth == 0 && lexed.is_punct(j, ";")) {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {
                    if toks[j].kind == TokenKind::Ident
                        && hash_types.contains(&toks[j].text)
                        && lexed.is_punct(j + 1, ":")
                        && lexed.is_punct(j + 2, ":")
                    {
                        hash_names.insert(name.clone());
                        break;
                    }
                }
            }
            j += 1;
        }
    }

    hash_names
}

/// R1: panic-family sites.
fn scan_unwraps(lexed: &Lexed, emit: &mut dyn FnMut(u32)) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            // `.unwrap()` / `.expect(` — require the receiver dot so
            // `unwrap_or` and attribute `#[expect]` never match. A
            // `self.expect(...)` call is a domain method (parsers name
            // their token-consumption helper `expect`), not
            // `Result::expect`, so it is excluded.
            "unwrap" => i > 0 && lexed.is_punct(i - 1, ".") && lexed.is_punct(i + 1, "("),
            "expect" => {
                i > 0
                    && lexed.is_punct(i - 1, ".")
                    && lexed.is_punct(i + 1, "(")
                    && !(i > 1 && lexed.is_ident(i - 2, "self"))
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => lexed.is_punct(i + 1, "!"),
            _ => false,
        };
        if hit {
            emit(t.line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> FileScan {
        scan_file("test.rs", src, ScanOptions::default())
    }

    fn rules(scan: &FileScan) -> Vec<&'static str> {
        scan.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn d1_instant_flagged() {
        let s = scan("fn f() { let t = std::time::Instant::now(); }");
        assert!(rules(&s).contains(&WALL_CLOCK));
    }

    #[test]
    fn d1_braced_sync_import_flagged() {
        let s = scan("use std::sync::{Arc, Mutex};");
        assert_eq!(rules(&s), vec![REAL_SYNC]);
        // Arc alone is fine.
        let s = scan("use std::sync::{Arc, atomic::AtomicBool};");
        assert!(s.violations.is_empty());
    }

    #[test]
    fn d2_for_loop_over_hashmap_flagged() {
        let s = scan(
            "use std::collections::HashMap;\n\
             fn f(m: HashMap<u32, u32>) { for (k, v) in &m { body(k, v); } }",
        );
        assert_eq!(rules(&s), vec![MAP_ITER]);
        assert_eq!(s.violations[0].line, 2);
    }

    #[test]
    fn d2_values_chain_through_refcell_flagged() {
        let s = scan(
            "struct S { m: Rc<RefCell<HashMap<String, u32>>> }\n\
             impl S { fn f(&self) -> Vec<u32> { self.m.borrow().values().cloned().collect() } }",
        );
        assert_eq!(rules(&s), vec![MAP_ITER]);
    }

    #[test]
    fn d2_keyed_access_is_fine() {
        let s = scan("fn f(m: &HashMap<u32, u32>, k: u32) -> Option<u32> { m.get(&k).copied() }");
        assert!(s.violations.is_empty());
    }

    #[test]
    fn d2_btreemap_is_fine() {
        let s = scan("fn f(m: &BTreeMap<u32, u32>) { for v in m.values() { use_it(v); } }");
        assert!(s.violations.is_empty());
    }

    #[test]
    fn d2_type_alias_tracked() {
        let s = scan(
            "type Index = HashMap<String, u32>;\n\
             fn f(idx: &Index) { for k in idx.keys() { go(k); } }",
        );
        assert_eq!(rules(&s), vec![MAP_ITER]);
    }

    #[test]
    fn d2_waiver_with_reason_suppresses() {
        let s = scan(
            "fn f(m: HashMap<u32, u32>) {\n\
             // tidy: allow(map-iter) — results are collected and sorted below\n\
             let mut v: Vec<_> = m.keys().collect();\n\
             v.sort(); }",
        );
        assert!(s.violations.is_empty());
    }

    #[test]
    fn d2_waiver_without_reason_is_flagged() {
        let s = scan(
            "fn f(m: HashMap<u32, u32>) {\n\
             // tidy: allow(map-iter)\n\
             for k in m.keys() { go(k); } }",
        );
        assert_eq!(rules(&s), vec![WAIVER_REASON]);
    }

    #[test]
    fn d3_thread_rng_flagged() {
        let s = scan("fn f() { let x = thread_rng().gen::<u32>(); }");
        assert_eq!(rules(&s), vec![AMBIENT_RNG]);
    }

    #[test]
    fn r1_unwrap_counted_outside_tests_only() {
        let s = scan(
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
             fn g(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
             #[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); } }",
        );
        assert_eq!(s.unwrap_count, 1);
        assert_eq!(s.unwrap_lines, vec![1]);
    }

    #[test]
    fn r1_panic_family_counted() {
        let s = scan("fn f() { panic!(\"boom\"); unreachable!(); todo!(); }");
        assert_eq!(s.unwrap_count, 3);
    }

    #[test]
    fn r1_self_expect_is_a_domain_method_not_result_expect() {
        let s = scan(
            "impl P { fn go(&mut self) -> Result<(), E> { self.expect(&Tok::Close)?; Ok(()) } }",
        );
        assert_eq!(s.unwrap_count, 0);
        let s = scan("fn f(x: Option<u32>) -> u32 { x.expect(\"present\") }");
        assert_eq!(s.unwrap_count, 1);
    }

    #[test]
    fn test_code_is_exempt_from_d_rules() {
        let s = scan(
            "#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n \
             fn t(m: HashMap<u32,u32>) { for k in m.keys() { go(k); } }\n}",
        );
        assert!(s.violations.is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let s = scan(
            "// std::time::Instant::now() in a comment\n\
             fn f() -> &'static str { \"thread_rng() HashMap.iter()\" }",
        );
        assert!(s.violations.is_empty());
        assert_eq!(s.unwrap_count, 0);
    }
}
