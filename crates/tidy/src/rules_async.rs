//! A-rules: async-safety. A `.await` reached while a `RefCell` borrow (or
//! lock guard) from the same or an enclosing block is still live is the
//! single-threaded-DES equivalent of a data race: any other task woken
//! during the await that touches the same cell panics with
//! `BorrowMutError`. The scan reconstructs block scopes from the token
//! tree and tracks guard liveness:
//!
//! - `let g = x.borrow_mut();` makes `g` live until its block ends, it is
//!   shadowed, or `drop(g)` runs;
//! - a guard call anywhere in a statement creates a *temporary* that lives
//!   to the end of that statement — `f(x.borrow().v).await` holds the
//!   borrow across the await;
//! - `match`/`for`/`if let`/`while let` scrutinee temporaries live through
//!   the body (plain `if`/`while` conditions drop theirs before the block,
//!   mirroring Rust's drop rules);
//! - closure and `async` block bodies are liveness boundaries: guards from
//!   the enclosing scope are not provably held at their awaits.

use crate::lexer::{Lexed, TokenKind};
use crate::tree::{self, Node};

/// Methods whose return value is a liveness-scoped guard.
const GUARD_METHODS: &[&str] = &[
    "borrow",
    "borrow_mut",
    "try_borrow",
    "try_borrow_mut",
    "lock",
    "try_lock",
];

/// One live guard binding (or scrutinee temporary).
#[derive(Clone, Debug)]
struct Guard {
    /// Binding name (`"<temporary>"` for scrutinee temporaries).
    name: String,
    /// Line of the guard-creating call.
    line: u32,
    /// The creating method (`borrow_mut`, `lock`, …).
    method: String,
}

/// Head keyword of the statement currently being scanned, for scrutinee
/// temporary handling at its body brace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum HeadKw {
    /// `match <expr> { … }`: scrutinee temporaries live through the arms.
    Match,
    /// `for <pat> in <expr> { … }`: iterator temporaries live for the loop.
    For,
    /// `if let` / `while let`: scrutinee temporaries live through the body.
    CondLet,
    /// Plain `if` / `while`: condition temporaries drop before the block.
    Plain,
}

struct AsyncScan<'a> {
    lexed: &'a Lexed,
    /// Live guards, innermost last. `boundary` indexes into this stack.
    live: Vec<Guard>,
}

/// Per-sequence statement state.
#[derive(Default)]
struct Stmt {
    /// A guard-creating call ran in this statement (temporary guard).
    temp: Option<(u32, String)>,
    /// This statement is `let [mut] <name> = …` (name captured).
    let_name: Option<String>,
    /// The statement's top-level chain currently ends with a guard call.
    guard_tail: Option<(u32, String)>,
    /// Head keyword state for the next `{` body at this level.
    head: Option<HeadKw>,
    /// The previous head keyword was `if`/`while` and we are watching for
    /// a following `let`.
    head_expect_let: bool,
}

/// Scan one file for A-rule violations. `emit(rule, line, message)`.
pub fn scan_await_borrow(lexed: &Lexed, emit: &mut dyn FnMut(u32, String)) {
    let nodes = tree::build(lexed);
    let mut scan = AsyncScan {
        lexed,
        live: Vec::new(),
    };
    scan.seq(&nodes, 0, &mut Stmt::default(), emit);
}

impl<'a> AsyncScan<'a> {
    fn tok_text(&self, i: usize) -> &str {
        &self.lexed.tokens[i].text
    }

    fn is_guard_method(&self, i: usize) -> bool {
        let t = &self.lexed.tokens[i];
        t.kind == TokenKind::Ident && GUARD_METHODS.contains(&t.text.as_str())
    }

    /// Scan a node sequence (block body, paren group interior, or the top
    /// level). `boundary` is the index into `self.live` below which guards
    /// belong to an enclosing closure/async context and are not counted.
    fn seq(
        &mut self,
        nodes: &[Node],
        boundary: usize,
        stmt: &mut Stmt,
        emit: &mut dyn FnMut(u32, String),
    ) {
        let mut prev: Option<usize> = None; // previous leaf token index at this level
        let mut i = 0;
        while i < nodes.len() {
            match &nodes[i] {
                Node::Tok(t) => {
                    let ti = *t;
                    let text = self.tok_text(ti).to_string();
                    match text.as_str() {
                        ";" => {
                            // Statement end: activate a named guard, drop
                            // the temporary.
                            if let Some(name) = stmt.let_name.take() {
                                // Shadowing: a re-`let` of the same name in
                                // this scope replaces (or retires) the old
                                // guard, whatever the new value is.
                                self.live.retain(|g| g.name != name);
                                if let Some((line, method)) = stmt.guard_tail.take() {
                                    self.live.push(Guard { name, line, method });
                                }
                            }
                            *stmt = Stmt::default();
                        }
                        "let" => {
                            if stmt.head_expect_let {
                                stmt.head = Some(HeadKw::CondLet);
                                stmt.head_expect_let = false;
                            } else if stmt.let_name.is_none() {
                                stmt.let_name = self.let_binding_name(nodes, i);
                            }
                        }
                        "match" => {
                            stmt.head = Some(HeadKw::Match);
                            stmt.head_expect_let = false;
                        }
                        "for" => {
                            // `impl Trait for T` also says `for`; a head
                            // guard only arises from a guard call after it,
                            // which an impl header cannot contain.
                            stmt.head = Some(HeadKw::For);
                            stmt.head_expect_let = false;
                        }
                        "if" | "while" => {
                            stmt.head = Some(HeadKw::Plain);
                            stmt.head_expect_let = true;
                        }
                        "else" | "loop" | "unsafe" => {
                            if !matches!(stmt.head, Some(HeadKw::CondLet)) {
                                stmt.head = Some(HeadKw::Plain);
                            }
                            stmt.head_expect_let = false;
                        }
                        "await" if prev.is_some_and(|p| self.tok_text(p) == ".") => {
                            self.check_await(ti, boundary, stmt, emit);
                        }
                        "drop" => {
                            // `drop(name)`: the guard dies here.
                            if let Some(Node::Group(g)) = nodes.get(i + 1) {
                                if g.delim == '(' && g.children.len() == 1 {
                                    if let Node::Tok(n) = &g.children[0] {
                                        let name = self.tok_text(*n).to_string();
                                        if let Some(pos) =
                                            self.live.iter().rposition(|gd| gd.name == name)
                                        {
                                            self.live.remove(pos);
                                        }
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                    // The `if`/`while` ↦ `let` window is one token wide:
                    // anything else between them means a plain condition.
                    if !matches!(text.as_str(), "let" | "if" | "while") {
                        stmt.head_expect_let = false;
                    }
                    // Any token after a guard-tail call breaks the tail
                    // (except `?`, which unwraps `try_borrow` results).
                    if text != "?" && text != ";" {
                        stmt.guard_tail = None;
                    }
                    prev = Some(ti);
                }
                Node::Group(g) => {
                    match g.delim {
                        '(' | '[' => {
                            // A guard call completes here: `. method ( … )`.
                            let is_guard_call = g.delim == '('
                                && prev.is_some_and(|p| self.is_guard_method(p))
                                && self.prev_is_dot_before(nodes, i);
                            // Recurse into the group as expression context:
                            // same statement, same boundary.
                            self.expr_group(&g.children, boundary, stmt, emit);
                            if is_guard_call {
                                let line = self.lexed.tokens[g.open].line;
                                let method = prev.map(|p| self.tok_text(p).to_string());
                                let method = method.unwrap_or_default();
                                stmt.temp = Some((line, method.clone()));
                                stmt.guard_tail = Some((line, method));
                            } else {
                                stmt.guard_tail = None;
                            }
                        }
                        _ => {
                            // `{ … }`: classify the block.
                            let len = self.live.len();
                            let is_boundary = self.brace_is_boundary(nodes, i, prev);
                            if is_boundary {
                                let mut inner = Stmt::default();
                                self.seq(&g.children, self.live.len(), &mut inner, emit);
                            } else {
                                let keep_scrutinee = matches!(
                                    stmt.head,
                                    Some(HeadKw::Match) | Some(HeadKw::For) | Some(HeadKw::CondLet)
                                );
                                if keep_scrutinee {
                                    if let Some((line, method)) = stmt.temp.clone() {
                                        self.live.push(Guard {
                                            name: "<scrutinee temporary>".into(),
                                            line,
                                            method,
                                        });
                                    }
                                }
                                let mut inner = Stmt::default();
                                self.seq(&g.children, boundary, &mut inner, emit);
                            }
                            self.live.truncate(len);
                            // After a body brace the statement-temporary
                            // window closes for everything except a match
                            // used as an expression (its scrutinee lives to
                            // the end of the full statement).
                            let was_match = matches!(stmt.head, Some(HeadKw::Match));
                            let temp = stmt.temp.take();
                            let let_name = stmt.let_name.take();
                            *stmt = Stmt::default();
                            if was_match {
                                stmt.temp = temp;
                                stmt.let_name = let_name;
                            }
                        }
                    }
                    prev = None;
                }
            }
            i += 1;
        }
    }

    /// Expression context: parens/brackets share the enclosing statement.
    fn expr_group(
        &mut self,
        nodes: &[Node],
        boundary: usize,
        stmt: &mut Stmt,
        emit: &mut dyn FnMut(u32, String),
    ) {
        let mut prev: Option<usize> = None;
        for (i, node) in nodes.iter().enumerate() {
            match node {
                Node::Tok(t) => {
                    let ti = *t;
                    if self.tok_text(ti) == "await" && prev.is_some_and(|p| self.tok_text(p) == ".")
                    {
                        self.check_await(ti, boundary, stmt, emit);
                    }
                    prev = Some(ti);
                }
                Node::Group(g) => {
                    match g.delim {
                        '(' | '[' => {
                            let is_guard_call = g.delim == '('
                                && prev.is_some_and(|p| self.is_guard_method(p))
                                && self.prev_is_dot_before(nodes, i);
                            self.expr_group(&g.children, boundary, stmt, emit);
                            if is_guard_call {
                                let line = self.lexed.tokens[g.open].line;
                                let method = prev
                                    .map(|p| self.tok_text(p).to_string())
                                    .unwrap_or_default();
                                stmt.temp = Some((line, method));
                            }
                        }
                        _ => {
                            // Block inside an expression (closure body,
                            // async block, match body…): classify the same
                            // way as at statement level.
                            let len = self.live.len();
                            if self.brace_is_boundary(nodes, i, prev) {
                                let mut inner = Stmt::default();
                                self.seq(&g.children, self.live.len(), &mut inner, emit);
                            } else {
                                let mut inner = Stmt::default();
                                self.seq(&g.children, boundary, &mut inner, emit);
                            }
                            self.live.truncate(len);
                        }
                    }
                    prev = None;
                }
            }
        }
    }

    /// Is the brace group at `nodes[i]` a liveness boundary (closure body
    /// or `async` block)?
    fn brace_is_boundary(&self, nodes: &[Node], i: usize, prev: Option<usize>) -> bool {
        // `async { … }` / `async move { … }` / `move { … }` (closure tail)
        // / `| … | { … }` (prev leaf is the closing pipe).
        if let Some(p) = prev {
            let t = self.tok_text(p);
            if t == "|" {
                return true;
            }
            if t == "move" || t == "async" {
                return true;
            }
        }
        // `|args| { … }` where args contained groups: look back two nodes.
        if i >= 1 {
            if let Node::Tok(p) = &nodes[i - 1] {
                let t = self.tok_text(*p);
                if t == "|" || t == "move" || t == "async" {
                    return true;
                }
            }
        }
        false
    }

    /// Does a `.` token directly precede the method ident before group `i`?
    fn prev_is_dot_before(&self, nodes: &[Node], i: usize) -> bool {
        if i < 2 {
            return false;
        }
        if let (Node::Tok(dot), Node::Tok(_)) = (&nodes[i - 2], &nodes[i - 1]) {
            return self.tok_text(*dot) == ".";
        }
        false
    }

    /// Extract the binding name of `let [mut] <name> = …` (also accepting
    /// `let Ok(name)` / `let Some(name)` single-binding patterns).
    fn let_binding_name(&self, nodes: &[Node], let_idx: usize) -> Option<String> {
        let mut j = let_idx + 1;
        if let Some(Node::Tok(t)) = nodes.get(j) {
            if self.tok_text(*t) == "mut" {
                j += 1;
            }
        }
        match nodes.get(j)? {
            Node::Tok(t) if self.lexed.tokens[*t].kind == TokenKind::Ident => {
                // `Ok(name)` / `Some(name)` wrapper pattern.
                if let Some(Node::Group(g)) = nodes.get(j + 1) {
                    if g.delim == '(' && g.close.is_some() {
                        if let Some(Node::Tok(inner)) = g.children.first() {
                            if self.lexed.tokens[*inner].kind == TokenKind::Ident {
                                return Some(self.tok_text(*inner).to_string());
                            }
                        }
                    }
                }
                Some(self.tok_text(*t).to_string())
            }
            _ => None,
        }
    }

    fn check_await(
        &self,
        await_tok: usize,
        boundary: usize,
        stmt: &Stmt,
        emit: &mut dyn FnMut(u32, String),
    ) {
        let line = self.lexed.tokens[await_tok].line;
        let held: Vec<&Guard> = self.live[boundary.min(self.live.len())..].iter().collect();
        if !held.is_empty() {
            let list = held
                .iter()
                .map(|g| format!("`{}` (.{}() on line {})", g.name, g.method, g.line))
                .collect::<Vec<_>>()
                .join(", ");
            emit(
                line,
                format!(
                    ".await while {list} is still live — any task woken during the await \
                     that touches the same cell panics with BorrowMutError; end the borrow \
                     (inner scope or drop()) before awaiting"
                ),
            );
        } else if let Some((bline, method)) = &stmt.temp {
            emit(
                line,
                format!(
                    ".await while the .{method}() temporary from line {bline} is still \
                     live (temporaries last to the end of the statement) — bind the \
                     needed value first, then await"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn hits(src: &str) -> Vec<u32> {
        let lexed = lex(src);
        let mut out = Vec::new();
        scan_await_borrow(&lexed, &mut |line, _| out.push(line));
        out
    }

    #[test]
    fn named_guard_across_await_flagged() {
        let src = "async fn f(c: &RefCell<u32>) {\n\
                   let g = c.borrow_mut();\n\
                   tick().await;\n\
                   use_it(g);\n}";
        assert_eq!(hits(src), vec![3]);
    }

    #[test]
    fn guard_dropped_before_await_is_clean() {
        let src = "async fn f(c: &RefCell<u32>) {\n\
                   let g = c.borrow_mut();\n\
                   drop(g);\n\
                   tick().await;\n}";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn guard_scoped_out_before_await_is_clean() {
        let src = "async fn f(c: &RefCell<u32>) {\n\
                   { let g = c.borrow_mut(); g.push(1); }\n\
                   tick().await;\n}";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn value_extracted_from_borrow_is_clean() {
        // The chain does not end in the guard: `g` is a plain value.
        let src = "async fn f(c: &RefCell<Vec<u32>>) {\n\
                   let n = c.borrow().len();\n\
                   tick().await;\n}";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn same_statement_temporary_across_await_flagged() {
        let src = "async fn f(c: &RefCell<u32>) {\n\
                   send(*c.borrow()).await;\n}";
        assert_eq!(hits(src), vec![2]);
    }

    #[test]
    fn plain_if_condition_borrow_is_dropped_before_body() {
        let src = "async fn f(c: &RefCell<bool>) {\n\
                   if *c.borrow() {\n\
                   tick().await;\n\
                   }\n}";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn match_scrutinee_borrow_lives_through_arms() {
        let src = "async fn f(c: &RefCell<State>) {\n\
                   match c.borrow().kind {\n\
                   Kind::A => tick().await,\n\
                   _ => {}\n\
                   }\n}";
        assert_eq!(hits(src), vec![3]);
    }

    #[test]
    fn for_loop_over_borrow_lives_through_body() {
        let src = "async fn f(c: &RefCell<Vec<u32>>) {\n\
                   for x in c.borrow().clone() {\n\
                   handle(x).await;\n\
                   }\n}";
        assert_eq!(hits(src), vec![3]);
    }

    #[test]
    fn guard_in_enclosing_block_still_counts_in_nested_block() {
        let src = "async fn f(c: &RefCell<u32>) {\n\
                   let g = c.borrow_mut();\n\
                   if ready {\n\
                   tick().await;\n\
                   }\n}";
        assert_eq!(hits(src), vec![4]);
    }

    #[test]
    fn async_block_is_a_liveness_boundary() {
        // The guard is created outside; the async block body runs later —
        // not provably held there (and flagging it would FP on spawn()).
        let src = "fn f(c: &RefCell<u32>) {\n\
                   let g = c.borrow_mut();\n\
                   spawn(async move {\n\
                   tick().await;\n\
                   });\n}";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn guard_inside_async_block_flagged() {
        let src = "fn f(c: Rc<RefCell<u32>>) {\n\
                   spawn(async move {\n\
                   let g = c.borrow_mut();\n\
                   tick().await;\n\
                   });\n}";
        assert_eq!(hits(src), vec![4]);
    }

    #[test]
    fn try_borrow_question_mark_guard_flagged() {
        let src = "async fn f(c: &RefCell<u32>) -> Result<(), E> {\n\
                   let g = c.try_borrow_mut()?;\n\
                   tick().await;\n\
                   Ok(())\n}";
        assert_eq!(hits(src), vec![3]);
    }

    #[test]
    fn shadowing_replaces_the_guard() {
        let src = "async fn f(c: &RefCell<u32>) {\n\
                   let g = c.borrow_mut();\n\
                   let g = read(g);\n\
                   tick().await;\n}";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn await_with_no_guards_is_clean() {
        let src = "async fn f() { tick().await; other().await; }";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn if_let_scrutinee_borrow_lives_through_body() {
        // Unlike a plain `if` condition, an `if let` scrutinee temporary
        // lives through the body (Rust's temporary-lifetime rules).
        let src = "async fn f(c: &RefCell<Option<u32>>) {\n\
                   if let Some(v) = c.borrow().as_ref() {\n\
                   tick().await;\n\
                   }\n}";
        assert_eq!(hits(src), vec![3]);
    }
}
