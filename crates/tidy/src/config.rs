//! What the linter checks and where: the workspace policy.

use std::path::{Path, PathBuf};

/// Linter configuration: which crates carry the determinism contract.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Crate directory names under `crates/` whose `src/` trees must obey
    /// the D- and R-rules (the "simulation crates": everything that runs
    /// inside virtual time).
    pub sim_crates: Vec<String>,
    /// Workspace-relative path of the R1 baseline file.
    pub baseline: String,
    /// Workspace-relative files exempt from D3 (the seeded-RNG
    /// implementation itself).
    pub rng_exempt: Vec<String>,
    /// Run the structural S-rules (crate docs, bench `--trace`).
    pub check_structure: bool,
    /// Path substrings that opt a file into the C-rules (checked
    /// arithmetic): codec/records/registry-style files where size
    /// arithmetic feeds wire formats.
    pub arith_paths: Vec<String>,
    /// Workspace-relative path of the metric-name registry manifest;
    /// `None` disables the M-rule registry cross-check.
    pub metrics_registry: Option<String>,
    /// Declared layer order, bottom first. Crate directory names; every
    /// dependency edge must point strictly downward. Empty disables the
    /// L-rules.
    pub layers: Vec<Vec<String>>,
}

impl Config {
    /// The policy for this repository.
    pub fn repo(root: PathBuf) -> Config {
        Config {
            root,
            sim_crates: [
                "simcore",
                "cluster",
                "container",
                "k8s",
                "knative",
                "condor",
                "pegasus",
                "workloads",
                "metrics",
                "obs",
                "core",
                "chaos",
                "apps",
                "elastic",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            baseline: "tidy.baseline".to_string(),
            rng_exempt: vec!["crates/simcore/src/rng.rs".to_string()],
            check_structure: true,
            arith_paths: ["codec", "records", "registry", "record"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            metrics_registry: Some("metrics.registry".to_string()),
            layers: [
                // Bottom: the event loop, the metric math, and the linter
                // itself — nothing here may look upward.
                &["simcore", "metrics", "tidy"][..],
                // Infrastructure primitives over virtual time, plus the
                // test-only reference executor (oracle for the differential
                // scheduler harness — depends only on simcore's time types).
                &["obs", "cluster", "workloads", "simref"],
                // Single-venue execution managers.
                &["condor", "container"],
                &["k8s"],
                // Venue compositions (knative rides k8s, pegasus rides
                // condor).
                &["knative", "pegasus"],
                // The cross-venue testbed and experiments.
                &["core"],
                // Consumers of the full stack.
                &["chaos", "apps"],
                // Elastic infrastructure rides the chaos harness.
                &["elastic"],
                &["bench"],
            ]
            .iter()
            .map(|layer| layer.iter().map(|s| s.to_string()).collect())
            .collect(),
        }
    }

    /// Locate the workspace root: `CARGO_MANIFEST_DIR/../..` when invoked
    /// via `cargo run -p swf-tidy`, else walk up from `cwd` looking for a
    /// `Cargo.toml` containing `[workspace]`.
    pub fn find_root() -> Option<PathBuf> {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let candidate = Path::new(&manifest).join("../..");
            if let Ok(canon) = candidate.canonicalize() {
                if is_workspace_root(&canon) {
                    return Some(canon);
                }
            }
        }
        let mut dir = std::env::current_dir().ok()?;
        loop {
            if is_workspace_root(&dir) {
                return Some(dir);
            }
            if !dir.pop() {
                return None;
            }
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|t| t.contains("[workspace]"))
        .unwrap_or(false)
}
