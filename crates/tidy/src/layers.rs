//! L-rules: cross-crate layering. The workspace has a declared layer
//! order (simcore at the bottom, bench at the top — see
//! [`crate::Config::repo`]); every `swf_*` reference in non-test code is a
//! dependency edge, and every edge must point *strictly downward*. This is
//! what keeps "the executor grows a convenience import of the scheduler"
//! from quietly turning the DAG into a ball: the first upward or lateral
//! edge fails CI with the two layer numbers in the message.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::context::FileContext;
use crate::lexer::{lex, TokenKind};
use crate::rules::{Violation, LAYERING};

/// Check every crate's `src/` tree against the declared layer order.
/// Appends one violation per offending (crate, dependency) pair, at the
/// first reference site.
pub fn check_layers(config: &Config, violations: &mut Vec<Violation>) {
    if config.layers.is_empty() {
        return;
    }
    let mut layer_of: BTreeMap<&str, usize> = BTreeMap::new();
    for (idx, layer) in config.layers.iter().enumerate() {
        for name in layer {
            layer_of.insert(name.as_str(), idx);
        }
    }

    let crates_dir = config.root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return;
    };
    let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();

    for dir in dirs {
        if !dir.join("src").is_dir() {
            continue;
        }
        let krate = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut seen_deps: BTreeSet<String> = BTreeSet::new();
        let mut unassigned_reported = false;

        for path in crate::rust_files(&dir.join("src")) {
            let Ok(source) = std::fs::read_to_string(&path) else {
                continue;
            };
            let rel_path = crate::rel(&config.root, &path);
            let lexed = lex(&source);
            let ctx = FileContext::build(&lexed);
            for t in &lexed.tokens {
                if t.kind != TokenKind::Ident || !t.text.starts_with("swf_") {
                    continue;
                }
                if ctx.is_test_line(t.line) {
                    continue; // unit tests may reach across layers
                }
                let dep = &t.text["swf_".len()..];
                if dep == krate || !seen_deps.insert(dep.to_string()) {
                    continue;
                }
                let Some(&crate_layer) = layer_of.get(krate.as_str()) else {
                    if !unassigned_reported {
                        unassigned_reported = true;
                        violations.push(Violation {
                            rule: LAYERING,
                            file: rel_path.clone(),
                            line: t.line,
                            message: format!(
                                "crate `{krate}` is not assigned to a layer — add it to \
                                 the layer order in swf-tidy's `Config::repo`"
                            ),
                        });
                    }
                    continue;
                };
                let Some(&dep_layer) = layer_of.get(dep) else {
                    violations.push(Violation {
                        rule: LAYERING,
                        file: rel_path.clone(),
                        line: t.line,
                        message: format!(
                            "`{krate}` depends on `{dep}`, which is not assigned to a \
                             layer — add it to the layer order in swf-tidy's \
                             `Config::repo`"
                        ),
                    });
                    continue;
                };
                if dep_layer >= crate_layer {
                    violations.push(Violation {
                        rule: LAYERING,
                        file: rel_path.clone(),
                        line: t.line,
                        message: format!(
                            "`{krate}` (layer {crate_layer}) must not depend on `{dep}` \
                             (layer {dep_layer}) — dependencies point strictly downward; \
                             move the shared piece below both crates or invert the edge"
                        ),
                    });
                }
            }
        }
    }
}
