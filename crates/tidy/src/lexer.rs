//! A minimal hand-rolled Rust lexer.
//!
//! Produces just enough structure for token-pattern linting: identifiers,
//! punctuation, literals and lifetimes with line numbers, plus the comment
//! stream (needed for `tidy: allow(...)` waivers). It is deliberately not a
//! full grammar — no `syn`, no proc-macro machinery — in the same spirit as
//! rustc's self-contained `tidy` tool, so it works offline with zero
//! dependencies and lexes the whole workspace in milliseconds.

/// What kind of token this is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `for`, `unwrap`, ...).
    Ident,
    /// Single punctuation character (`.`, `:`, `{`, ...). Multi-character
    /// operators arrive as consecutive tokens (`::` is `:`+`:`).
    Punct,
    /// String / char / byte / numeric literal (content not interpreted).
    Literal,
    /// Lifetime such as `'a` (kept distinct so `'static` never looks like
    /// an unterminated char literal).
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Kind of the token.
    pub kind: TokenKind,
    /// Source text of the token (for literals: the raw text).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// One comment (line or block), kept out of the token stream.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Full comment text including the `//` / `/*` sigils.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Is the token at `i` an identifier with exactly this text?
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
    }

    /// Is the token at `i` punctuation with exactly this text?
    pub fn is_punct(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
    }

    /// Does the token sequence starting at `i` match `pattern`, where each
    /// element is either an identifier or a punctuation character?
    pub fn matches(&self, i: usize, pattern: &[&str]) -> bool {
        pattern.iter().enumerate().all(|(k, p)| {
            self.tokens
                .get(i + k)
                .is_some_and(|t| t.text == *p && t.kind != TokenKind::Literal)
        })
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lex `source` into tokens and comments. Unterminated constructs are
/// tolerated (the remainder of the file becomes one token/comment); a
/// linter must never panic on weird input.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                out.comments.push(Comment {
                    line,
                    text: source[start..cur.pos].to_string(),
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    line,
                    text: source[start..cur.pos].to_string(),
                });
            }
            b'"' => {
                lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[start..cur.pos].to_string(),
                    line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(&cur) => {
                lex_raw_or_byte_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[start..cur.pos].to_string(),
                    line,
                });
            }
            // Raw identifier `r#type`: one identifier token, full text kept
            // (so rules can match on the escaped keyword if they care).
            b'r' if cur.peek_at(1) == Some(b'#') && cur.peek_at(2).is_some_and(is_ident_start) => {
                cur.bump();
                cur.bump();
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..cur.pos].to_string(),
                    line,
                });
            }
            // Byte-char literal `b'x'` / `b'\n'`: one literal token, not an
            // ident `b` followed by a char.
            b'b' if cur.peek_at(1) == Some(b'\'') => {
                cur.bump(); // 'b'
                lex_char_body(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[start..cur.pos].to_string(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime.
                let is_lifetime =
                    cur.peek_at(1).is_some_and(is_ident_start) && cur.peek_at(2) != Some(b'\'');
                if is_lifetime {
                    cur.bump();
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[start..cur.pos].to_string(),
                        line,
                    });
                } else {
                    lex_char_body(&mut cur);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: source[start..cur.pos].to_string(),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                while cur
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'.')
                {
                    // Stop a float from eating `..` or a method call `.fn`.
                    if cur.peek() == Some(b'.')
                        && !cur.peek_at(1).is_some_and(|n| n.is_ascii_digit())
                    {
                        break;
                    }
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[start..cur.pos].to_string(),
                    line,
                });
            }
            c if is_ident_start(c) => {
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..cur.pos].to_string(),
                    line,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: source[start..cur.pos].to_string(),
                    line,
                });
            }
        }
    }
    out
}

/// Consume a char literal starting at its opening quote. Escapes may be
/// multi-byte (`'\x41'`, `'\u{1F600}'`): scan to the closing quote honoring
/// backslash escapes, bounded so a stray quote cannot eat the file.
fn lex_char_body(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    let mut budget = 12;
    while budget > 0 {
        match cur.peek() {
            Some(b'\\') => {
                cur.bump();
                cur.bump();
            }
            Some(b'\'') => {
                cur.bump();
                return;
            }
            Some(_) => {
                cur.bump();
            }
            None => return,
        }
        budget -= 1;
    }
}

fn starts_raw_or_byte_string(cur: &Cursor<'_>) -> bool {
    // r"..."  r#"..."#  b"..."  br"..."  br#"..."#  (raw idents r#foo are
    // handled by the caller falling through to ident lexing: we require a
    // quote after the hashes).
    let c = cur.peek();
    let mut off = 1;
    if c == Some(b'b') {
        if cur.peek_at(1) == Some(b'"') {
            return true;
        }
        if cur.peek_at(1) != Some(b'r') {
            return false;
        }
        off = 2;
    }
    let mut hashes = 0;
    while cur.peek_at(off + hashes) == Some(b'#') {
        hashes += 1;
    }
    cur.peek_at(off + hashes) == Some(b'"') && (hashes > 0 || cur.peek_at(off) == Some(b'"'))
}

fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.peek() {
        match c {
            b'\\' => {
                cur.bump();
                cur.bump();
            }
            b'"' => {
                cur.bump();
                return;
            }
            _ => {
                cur.bump();
            }
        }
    }
}

fn lex_raw_or_byte_string(cur: &mut Cursor<'_>) {
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'"') {
        // Plain byte string: escapes apply.
        lex_string(cur);
        return;
    }
    cur.bump(); // 'r'
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
                // Raw string: ends at `"` followed by `hashes` hashes; no escapes.
    while let Some(c) = cur.bump() {
        if c == b'"' {
            let mut seen = 0;
            while seen < hashes && cur.peek() == Some(b'#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let l = lex("let x = a.b();\nfoo::bar");
        assert_eq!(
            l.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            vec!["let", "x", "=", "a", ".", "b", "(", ")", ";", "foo", ":", ":", "bar"]
        );
        assert_eq!(l.tokens.last().unwrap().line, 2);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("a // trailing\n/* block\nspanning */ b");
        assert_eq!(
            l.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, "// trailing");
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "HashMap.iter() // not a comment"; x"#);
        assert!(l.comments.is_empty());
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Literal));
        assert!(!l.tokens.iter().any(|t| t.text == "HashMap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex(r##"let s = r#"quote " inside"#; y"##);
        assert_eq!(l.tokens.last().unwrap().text, "y");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still outer */ b");
        assert_eq!(texts("a /* outer /* inner */ still */ b"), vec!["a", "b"]);
        assert_eq!(l.tokens.len(), 2);
    }

    #[test]
    fn multi_byte_char_escapes_do_not_derail_the_stream() {
        // `'\u{1F600}'` and `'\x41'` are single literals; the tokens after
        // them must still classify correctly.
        let l = lex("let a = '\\u{1F600}'; let b = '\\x41'; tail");
        assert_eq!(l.tokens.last().unwrap().text, "tail");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn byte_char_literal_is_one_token() {
        let l = lex("let nl = b'\\n'; let sp = b' '; tail");
        assert_eq!(l.tokens.last().unwrap().text, "tail");
        // No stray `b` identifier tokens from the byte-char prefixes.
        assert!(!l.tokens.iter().any(|t| t.text == "b"));
    }

    #[test]
    fn raw_identifiers_are_single_idents() {
        let l = lex("let r#type = r#match.call(); tail");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "r#type"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "r#match"));
        assert_eq!(l.tokens.last().unwrap().text, "tail");
    }

    #[test]
    fn raw_string_with_hash_containing_quotes_and_comment_sigils() {
        let l = lex("let s = br#\"// not a comment \" /* nor this */\"#; tail");
        assert!(l.comments.is_empty());
        assert_eq!(l.tokens.last().unwrap().text, "tail");
    }

    #[test]
    fn unterminated_nested_block_comment_is_tolerated() {
        let l = lex("a /* outer /* inner */ never closed");
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn lifetime_adjacent_to_char_literal() {
        // `<'a>` then `'b'`: one lifetime, one literal, no confusion.
        let l = lex("fn f<'a>(x: &'a u8) { let c: char = 'b'; }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn numeric_literals_do_not_eat_method_calls() {
        let l = lex("1.0f64.sqrt(); 0..10; x.0.iter()");
        assert!(l.tokens.iter().any(|t| t.text == "sqrt"));
        assert!(l.tokens.iter().any(|t| t.text == "iter"));
    }
}
