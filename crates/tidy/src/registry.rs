//! The checked-in metric-name manifest (`metrics.registry`).
//!
//! Every metric name the simulation emits (`counter_add` / `gauge_set` /
//! `observe` with a literal name) must appear here, and every entry here
//! must still be emitted somewhere — the manifest and the tree round-trip.
//! This is what makes a typo'd metric name (`knative.cold_stars`) a CI
//! failure instead of a silently-empty dashboard panel: the name check is
//! exact, both directions, and `--bless` regenerates the file from the
//! tree so the diff review shows exactly which names appeared or died.

use std::collections::BTreeMap;
use std::path::Path;

/// One parsed `metrics.registry` manifest.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    /// Metric name → 1-based line of its entry.
    pub entries: BTreeMap<String, u32>,
    /// Duplicate entries: (name, line of the duplicate).
    pub duplicates: Vec<(String, u32)>,
}

impl Registry {
    /// Parse manifest text. Blank lines and `#` comments are ignored; every
    /// other line is one metric name.
    pub fn parse(text: &str) -> Registry {
        let mut reg = Registry::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx as u32 + 1;
            let name = raw.trim();
            if name.is_empty() || name.starts_with('#') {
                continue;
            }
            if reg.entries.contains_key(name) {
                reg.duplicates.push((name.to_string(), line));
            } else {
                reg.entries.insert(name.to_string(), line);
            }
        }
        reg
    }

    /// Load a manifest from disk. A missing file parses as empty (the
    /// caller reports every emitted name as unknown, which points straight
    /// at `--bless`).
    pub fn load(path: &Path) -> Registry {
        match std::fs::read_to_string(path) {
            Ok(text) => Registry::parse(&text),
            Err(_) => Registry::default(),
        }
    }

    /// Render a manifest from a sorted name set (the `--bless` output).
    pub fn render<'a>(names: impl IntoIterator<Item = &'a str>) -> String {
        let mut out = String::from(
            "# Metric-name registry — every literal name passed to counter_add /\n\
             # gauge_set / observe in a simulation crate, one per line. Checked both\n\
             # ways by `swf-tidy` (M-rules): an emitted name missing here is\n\
             # `metric-unknown`, an entry no longer emitted is `metric-dead`.\n\
             # Regenerate with `cargo run -p swf-tidy -- check --bless`.\n",
        );
        for name in names {
            out.push_str(name);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_skips_comments_and_blanks() {
        let reg = Registry::parse("# header\n\napps.fanout\nk8s.pods_started\n");
        assert_eq!(reg.entries.len(), 2);
        assert_eq!(reg.entries["apps.fanout"], 3);
        assert!(reg.duplicates.is_empty());
    }

    #[test]
    fn duplicates_are_reported_with_their_line() {
        let reg = Registry::parse("a.b\na.b\n");
        assert_eq!(reg.entries.len(), 1);
        assert_eq!(reg.duplicates, vec![("a.b".to_string(), 2)]);
    }

    #[test]
    fn render_round_trips_through_parse() {
        let names = ["apps.fanout", "k8s.pods_started"];
        let reg = Registry::parse(&Registry::render(names.iter().copied()));
        assert_eq!(
            reg.entries.keys().map(String::as_str).collect::<Vec<_>>(),
            names
        );
    }
}
