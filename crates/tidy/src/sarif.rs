//! SARIF 2.1.0 output — the interchange format GitHub code scanning
//! ingests to annotate PR diffs. Minimal but valid: one run, one driver,
//! a `rules` table of the rule ids that fired, and one `result` per
//! violation with a physical location. Hand-rolled like the JSON emitter
//! (stable key order, zero dependencies).

use crate::rules::Violation;
use crate::{json_str, Report};

/// Render a report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> String {
    let mut rule_ids: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();

    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"swf-tidy\",\n          \
         \"informationUri\": \"https://github.com/\",\n          \"rules\": [",
    );
    for (i, id) in rule_ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_str(id),
            json_str(id)
        ));
    }
    if !rule_ids.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n      \"results\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&result_json(v));
    }
    if !report.violations.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn result_json(v: &Violation) -> String {
    format!(
        "\n        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
         \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
         \"region\": {{\"startLine\": {}}}}}}}]}}",
        json_str(v.rule),
        json_str(&v.message),
        json_str(&v.file),
        v.line.max(1)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_valid_sarif_shell() {
        let s = to_sarif(&Report::default());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"results\": []"));
    }

    #[test]
    fn violations_become_results_with_clamped_lines() {
        let mut r = Report::default();
        r.violations.push(Violation {
            rule: crate::rules::UNWRAP,
            file: "crates/x/src/lib.rs".into(),
            line: 0, // whole-file finding: SARIF requires startLine >= 1
            message: "baseline is stale".into(),
        });
        let s = to_sarif(&r);
        assert!(s.contains("\"ruleId\": \"unwrap\""));
        assert!(s.contains("\"startLine\": 1"));
        assert!(s.contains("crates/x/src/lib.rs"));
    }
}
