//! Per-file lint context: `#[cfg(test)]` regions and waiver comments.

use crate::lexer::{Lexed, TokenKind};

/// A `// tidy: allow(<rule>) — <reason>` waiver parsed from a comment.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// Whether a non-empty reason follows the `allow(...)`.
    pub has_reason: bool,
}

/// Line-oriented context for one file.
#[derive(Clone, Debug, Default)]
pub struct FileContext {
    /// Inclusive line ranges that are test-only code (`#[cfg(test)]` /
    /// `#[test]` items).
    pub test_ranges: Vec<(u32, u32)>,
    /// All waivers found in comments.
    pub waivers: Vec<Waiver>,
}

impl FileContext {
    /// Build the context for a lexed file.
    pub fn build(lexed: &Lexed) -> FileContext {
        FileContext {
            test_ranges: test_ranges(lexed),
            waivers: waivers(lexed),
        }
    }

    /// Is this line inside test-only code?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// Is a violation of `rule` at `line` waived? A waiver covers its own
    /// line (trailing comment) and up to two following lines (standalone
    /// comment above the offending code, tolerating one wrapped line).
    pub fn is_waived(&self, rule: &str, line: u32) -> Option<&Waiver> {
        self.waivers
            .iter()
            .find(|w| w.rule == rule && line >= w.line && line <= w.line + 2)
    }
}

/// Find `#[cfg(test)]` / `#[test]` attributed items and return the line
/// ranges their bodies span. Token-level: after the attribute, skip any
/// further attributes, then the region extends to the matching close brace
/// of the first `{` (or the first `;` for brace-less items).
fn test_ranges(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if lexed.is_punct(i, "#") && lexed.is_punct(i + 1, "[") && is_test_attr(lexed, i + 2) {
            let start_line = toks[i].line;
            // Skip to the end of this attribute.
            let mut j = i + 2;
            let mut depth = 1; // the '[' we already saw
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            // Skip any further attributes between this one and the item.
            while lexed.is_punct(j, "#") && lexed.is_punct(j + 1, "[") {
                let mut d = 1;
                j += 2;
                while j < toks.len() && d > 0 {
                    match toks[j].text.as_str() {
                        "[" => d += 1,
                        "]" => d -= 1,
                        _ => {}
                    }
                    j += 1;
                }
            }
            // Find the item body: first `{` at depth 0 (tracking parens for
            // fn signatures), or a terminating `;`.
            let mut paren = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    ";" if paren == 0 => {
                        ranges.push((start_line, toks[j].line));
                        break;
                    }
                    "{" if paren == 0 => {
                        let mut d = 1;
                        let mut k = j + 1;
                        while k < toks.len() && d > 0 {
                            match toks[k].text.as_str() {
                                "{" => d += 1,
                                "}" => d -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                        let end_line = toks.get(k.saturating_sub(1)).map_or(u32::MAX, |t| t.line);
                        ranges.push((start_line, end_line));
                        j = k;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
    ranges
}

/// Does the attribute content starting at `i` (just past `#[`) mark test
/// code? Matches `test`, `cfg(test)`, and `cfg(any(test, ...))`-style
/// forms by looking for a `test` identifier before the closing `]`.
fn is_test_attr(lexed: &Lexed, i: usize) -> bool {
    let toks = &lexed.tokens;
    if lexed.is_ident(i, "test") && lexed.is_punct(i + 1, "]") {
        return true;
    }
    if !lexed.is_ident(i, "cfg") {
        return false;
    }
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" => depth -= 1,
            "]" if depth == 0 => return false,
            "test" if toks[j].kind == TokenKind::Ident => return true,
            _ => {}
        }
        if depth < 0 {
            return false;
        }
        j += 1;
    }
    false
}

/// Parse `tidy: allow(<rule>)` waivers out of the comment stream. A waiver
/// inside a multi-line block comment is attributed to the line it actually
/// sits on (not the comment's first line), so its coverage window lands on
/// the code directly below it.
fn waivers(lexed: &Lexed) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let mut rest = c.text.as_str();
        let mut offset = 0usize; // byte offset of `rest` within `c.text`
        while let Some(pos) = rest.find("tidy: allow(") {
            let line_in_comment = c.text[..offset + pos].matches('\n').count() as u32;
            let after = &rest[pos + "tidy: allow(".len()..];
            let Some(close) = after.find(')') else { break };
            let rule = after[..close].trim().to_string();
            // The reason runs to the end of the waiver's own line (a block
            // comment may continue with unrelated text on later lines).
            let tail = &after[close + 1..];
            let reason_text = tail.split('\n').next().unwrap_or("");
            let reason = reason_text
                .trim_start_matches([' ', '—', '-', ':', '–'])
                .trim_end_matches("*/")
                .trim();
            out.push(Waiver {
                line: c.line + line_in_comment,
                rule,
                has_reason: reason.len() >= 3,
            });
            offset += pos + "tidy: allow(".len() + close + 1;
            rest = tail;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_region_detected() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn x() { y(); }\n}\nfn b() {}";
        let ctx = FileContext::build(&lex(src));
        assert!(ctx.is_test_line(3));
        assert!(ctx.is_test_line(4));
        assert!(!ctx.is_test_line(1));
        assert!(!ctx.is_test_line(6));
    }

    #[test]
    fn test_fn_attr_detected() {
        let src = "#[test]\nfn works() {\n  body();\n}\nfn not_test() {}";
        let ctx = FileContext::build(&lex(src));
        assert!(ctx.is_test_line(2));
        assert!(ctx.is_test_line(3));
        assert!(!ctx.is_test_line(5));
    }

    #[test]
    fn waiver_parsing_with_and_without_reason() {
        let src = "// tidy: allow(map-iter) — keys drained into a sorted Vec\nlet x = 1;\n// tidy: allow(unwrap)\n";
        let ctx = FileContext::build(&lex(src));
        assert_eq!(ctx.waivers.len(), 2);
        assert!(ctx.waivers[0].has_reason);
        assert_eq!(ctx.waivers[0].rule, "map-iter");
        assert!(!ctx.waivers[1].has_reason);
        assert!(ctx.is_waived("map-iter", 2).is_some());
        assert!(ctx.is_waived("map-iter", 5).is_none());
    }

    #[test]
    fn waiver_inside_multi_line_block_comment_lands_on_its_own_line() {
        let src = "/* Explanation paragraph.\n\
                    tidy: allow(map-iter) — drained into a sorted Vec below\n\
                    more prose */\n\
                    let x = 1;\n";
        let ctx = FileContext::build(&lex(src));
        assert_eq!(ctx.waivers.len(), 1);
        let w = &ctx.waivers[0];
        assert_eq!(w.line, 2);
        assert!(w.has_reason);
        // Coverage window: the waiver's own line + two below.
        assert!(ctx.is_waived("map-iter", 4).is_some());
        assert!(ctx.is_waived("map-iter", 5).is_none());
    }

    #[test]
    fn block_comment_waiver_reason_stops_at_line_end() {
        // No reason on the waiver's line; prose on the next line must not
        // count as one.
        let src = "/*\ntidy: allow(unwrap)\nunrelated trailing prose\n*/\nlet x = 1;\n";
        let ctx = FileContext::build(&lex(src));
        assert_eq!(ctx.waivers.len(), 1);
        assert!(!ctx.waivers[0].has_reason);
        assert_eq!(ctx.waivers[0].line, 2);
    }

    #[test]
    fn two_waivers_in_one_block_comment() {
        let src = "/* tidy: allow(wall-clock) — host profiling only\n\
                    tidy: allow(unwrap) — poisoned lock is unrecoverable */\nf();\n";
        let ctx = FileContext::build(&lex(src));
        assert_eq!(ctx.waivers.len(), 2);
        assert_eq!(ctx.waivers[0].line, 1);
        assert_eq!(ctx.waivers[1].line, 2);
        assert!(ctx.waivers.iter().all(|w| w.has_reason));
    }

    #[test]
    fn cfg_test_on_use_item_covers_only_that_line() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}";
        let ctx = FileContext::build(&lex(src));
        assert!(ctx.is_test_line(2));
        assert!(!ctx.is_test_line(3));
    }
}
