//! D4: float non-determinism. IEEE-754 addition is not associative, so any
//! float reduction whose operand *order* is not fixed can change the final
//! bits from run to run — exactly the drift `suite compare` exists to
//! catch. Two patterns:
//!
//! - `float-accum`: accumulation (`sum::<f32/f64>()`, `fold(0.0, …)`,
//!   `product`, `+=` with a float operand) over a hash-ordered source. The
//!   D2 rule already bans the iteration itself; this rule names the
//!   *consequence* so a `map-iter` waiver cannot quietly launder a float
//!   reduction through.
//! - `partial-cmp-sort`: `sort_by`/`max_by`/`min_by` comparators built on
//!   `partial_cmp` — `NaN` makes the comparator non-total, and totality
//!   violations make `sort_by` order (and thus downstream floats)
//!   unspecified. Use `f64::total_cmp`.

use crate::lexer::{Lexed, TokenKind};
use crate::rules::{collect_hash_names, for_loop_hash_source, FLOAT_ACCUM, PARTIAL_CMP_SORT};

/// Reduction methods that fold an iterator into one value.
const ACCUM_METHODS: &[&str] = &["sum", "product", "fold"];

/// Sort/extremum methods that take a comparator closure.
const CMP_METHODS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// Scan one file for D4 violations.
pub fn scan_float(lexed: &Lexed, emit: &mut dyn FnMut(&'static str, u32, String)) {
    scan_partial_cmp(lexed, emit);
    scan_hash_accum(lexed, emit);
}

/// `sort_by(|a, b| a.partial_cmp(b).unwrap())` and friends.
fn scan_partial_cmp(lexed: &Lexed, emit: &mut dyn FnMut(&'static str, u32, String)) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident
            || !CMP_METHODS.contains(&t.text.as_str())
            || !lexed.is_punct(i + 1, "(")
        {
            continue;
        }
        // Scan the argument list for `partial_cmp`.
        let mut depth = 1i32;
        let mut j = i + 2;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => depth -= 1,
                "partial_cmp" if toks[j].kind == TokenKind::Ident => {
                    emit(
                        PARTIAL_CMP_SORT,
                        toks[j].line,
                        format!(
                            "`{}` comparator built on `partial_cmp` — NaN makes it \
                             non-total and the resulting order unspecified; use \
                             `total_cmp` for floats",
                            t.text
                        ),
                    );
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// Float reductions over hash-ordered sources.
fn scan_hash_accum(lexed: &Lexed, emit: &mut dyn FnMut(&'static str, u32, String)) {
    let toks = &lexed.tokens;
    let hash_names = collect_hash_names(lexed);
    if hash_names.is_empty() {
        return;
    }

    // (a) method chains rooted at a hash name reaching `sum`/`fold`/
    // `product` with float evidence. The chain walk is permissive: any
    // `.ident(...)` link keeps us on the same statement's chain.
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || !hash_names.contains(&t.text) || lexed.is_punct(i + 1, ":")
        {
            continue;
        }
        let mut j = i + 1;
        let mut hops = 0;
        while lexed.is_punct(j, ".") && hops < 8 {
            let Some(m) = toks.get(j + 1) else { break };
            if m.kind != TokenKind::Ident {
                break;
            }
            if ACCUM_METHODS.contains(&m.text.as_str()) && is_float_reduction(lexed, j + 2) {
                emit(
                    FLOAT_ACCUM,
                    m.line,
                    format!(
                        "float `.{}()` over hash-ordered `{}` — IEEE-754 addition is \
                         not associative, so hasher order changes the result bits; \
                         reduce over a BTree or sorted Vec instead",
                        m.text, t.text
                    ),
                );
                break;
            }
            // Step over an optional turbofish and the call parens.
            let mut k = j + 2;
            if lexed.is_punct(k, ":") && lexed.is_punct(k + 1, ":") && lexed.is_punct(k + 2, "<") {
                let mut d = 1;
                k += 3;
                while k < toks.len() && d > 0 {
                    match toks[k].text.as_str() {
                        "<" => d += 1,
                        ">" => d -= 1,
                        _ => {}
                    }
                    k += 1;
                }
            }
            if lexed.is_punct(k, "(") {
                let mut d = 1;
                k += 1;
                while k < toks.len() && d > 0 {
                    match toks[k].text.as_str() {
                        "(" => d += 1,
                        ")" => d -= 1,
                        _ => {}
                    }
                    k += 1;
                }
            }
            j = k;
            hops += 1;
        }
    }

    // (b) `+=` with a float operand inside a `for` loop over a hash name.
    for i in 0..toks.len() {
        if !lexed.is_ident(i, "for") || lexed.is_punct(i + 1, "<") {
            continue;
        }
        let Some((name, _)) = for_loop_hash_source(lexed, i, &hash_names) else {
            continue;
        };
        // Find the loop body `{` and scan its extent for `+=` statements
        // with a float literal in the same statement.
        let mut j = i + 1;
        while j < toks.len() && !lexed.is_punct(j, "{") {
            j += 1;
        }
        let mut depth = 1i32;
        j += 1;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                "+" if lexed.is_punct(j + 1, "=") && stmt_has_float(lexed, j) => {
                    emit(
                        FLOAT_ACCUM,
                        toks[j].line,
                        format!(
                            "float `+=` accumulation inside a loop over hash-ordered \
                             `{name}` — IEEE-754 addition is not associative, so hasher \
                             order changes the result bits"
                        ),
                    );
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// Float evidence for a reduction at the token just past the method name:
/// a `::<f32/f64>` turbofish, or a float literal / `f32`/`f64` ident among
/// the call arguments (`fold(0.0, …)`).
fn is_float_reduction(lexed: &Lexed, mut k: usize) -> bool {
    let toks = &lexed.tokens;
    if lexed.is_punct(k, ":") && lexed.is_punct(k + 1, ":") && lexed.is_punct(k + 2, "<") {
        let mut d = 1;
        let mut j = k + 3;
        while j < toks.len() && d > 0 {
            match toks[j].text.as_str() {
                "<" => d += 1,
                ">" => d -= 1,
                "f32" | "f64" => return true,
                _ => {}
            }
            j += 1;
        }
        k = j;
    }
    if !lexed.is_punct(k, "(") {
        return false;
    }
    let mut d = 1;
    let mut j = k + 1;
    while j < toks.len() && d > 0 {
        let t = &toks[j];
        match t.text.as_str() {
            "(" => d += 1,
            ")" => d -= 1,
            "f32" | "f64" => return true,
            _ => {
                if t.kind == TokenKind::Literal && is_float_literal(&t.text) {
                    return true;
                }
            }
        }
        j += 1;
    }
    false
}

/// Does the statement containing the `+=` at token `j` mention a float
/// literal? Scans from the previous `;`/`{` to the next `;`.
fn stmt_has_float(lexed: &Lexed, j: usize) -> bool {
    let toks = &lexed.tokens;
    let start = (0..j)
        .rev()
        .find(|&k| matches!(toks[k].text.as_str(), ";" | "{" | "}"))
        .map_or(0, |k| k + 1);
    let mut k = start;
    while k < toks.len() {
        let t = &toks[k];
        if t.text == ";" && k > j {
            break;
        }
        if t.kind == TokenKind::Literal && is_float_literal(&t.text) {
            return true;
        }
        if t.kind == TokenKind::Ident && (t.text == "f32" || t.text == "f64") {
            return true;
        }
        k += 1;
    }
    false
}

/// `1.0`, `0.5f64`, `1e-3` — numeric literals with a fractional/exponent
/// part (and not a range like `0..10`, which lexes as separate tokens).
fn is_float_literal(text: &str) -> bool {
    let b = text.as_bytes();
    if b.first().is_none_or(|c| !c.is_ascii_digit()) {
        return false;
    }
    text.contains('.')
        || text.contains("e-")
        || text.contains("e+")
        || text.ends_with("f64")
        || text.ends_with("f32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn hits(src: &str) -> Vec<(&'static str, u32)> {
        let lexed = lex(src);
        let mut out = Vec::new();
        scan_float(&lexed, &mut |rule, line, _| out.push((rule, line)));
        out
    }

    #[test]
    fn partial_cmp_sort_flagged() {
        let src = "fn f(v: &mut Vec<f64>) {\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}";
        assert_eq!(hits(src), vec![(PARTIAL_CMP_SORT, 2)]);
    }

    #[test]
    fn total_cmp_sort_is_clean() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn float_sum_over_hashmap_values_flagged() {
        let src = "fn f(m: &HashMap<String, f64>) -> f64 {\n\
                   m.values().sum::<f64>()\n}";
        assert_eq!(hits(src), vec![(FLOAT_ACCUM, 2)]);
    }

    #[test]
    fn float_fold_over_hashmap_flagged() {
        let src = "fn f(m: &HashMap<String, f64>) -> f64 {\n\
                   m.values().fold(0.0, |a, b| a + b)\n}";
        assert_eq!(hits(src), vec![(FLOAT_ACCUM, 2)]);
    }

    #[test]
    fn int_sum_over_hashmap_is_not_float_accum() {
        // Order-independent: integer addition is associative.
        let src = "fn f(m: &HashMap<String, u64>) -> u64 { m.values().sum::<u64>() }";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn float_sum_over_vec_is_clean() {
        let src = "fn f(v: &Vec<f64>) -> f64 { v.iter().sum::<f64>() }";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn float_plus_eq_in_hash_loop_flagged() {
        let src = "fn f(m: &HashMap<String, f64>) -> f64 {\n\
                   let mut acc = 0.0;\n\
                   for v in m.values() {\n\
                   acc += v * 2.0;\n\
                   }\n\
                   acc\n}";
        let h = hits(src);
        assert!(h.contains(&(FLOAT_ACCUM, 4)), "{h:?}");
    }

    #[test]
    fn int_counter_in_hash_loop_is_clean_for_d4() {
        let src = "fn f(m: &HashMap<String, u64>) -> u64 {\n\
                   let mut n = 0;\n\
                   for _ in m.keys() { n += 1; }\n\
                   n\n}";
        assert!(hits(src).is_empty());
    }
}
