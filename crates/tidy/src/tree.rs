//! Nesting-aware token trees: the scope layer on top of the flat lexer.
//!
//! The flat token stream is enough for token-pattern rules (D1–D3), but the
//! scope-sensitive families (A-rules: guard liveness across `.await`;
//! let-binding classification for D4/C-rules) need to know *where blocks
//! begin and end*. This module groups the flat stream into a token tree:
//! every `(…)`, `[…]` and `{…}` becomes a [`Node::Group`] whose children
//! are the tokens and groups inside it, in source order. Unbalanced input
//! is tolerated — a stray closer is kept as a plain token, an unterminated
//! group simply runs to end of file — because a linter must never panic on
//! a half-edited tree.

use crate::lexer::Lexed;

/// One node of the token tree.
#[derive(Clone, Debug)]
pub enum Node {
    /// A leaf: index into `Lexed::tokens`.
    Tok(usize),
    /// A delimited group.
    Group(Group),
}

/// A delimited group: `(…)`, `[…]` or `{…}`.
#[derive(Clone, Debug)]
pub struct Group {
    /// Opening delimiter: `(`, `[` or `{`.
    pub delim: char,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter (`None` if unterminated).
    pub close: Option<usize>,
    /// Children in source order.
    pub children: Vec<Node>,
}

impl Node {
    /// The 1-based source line this node starts on.
    pub fn line(&self, lexed: &Lexed) -> u32 {
        match self {
            Node::Tok(i) => lexed.tokens[*i].line,
            Node::Group(g) => lexed.tokens[g.open].line,
        }
    }
}

fn closer_for(open: char) -> &'static str {
    match open {
        '(' => ")",
        '[' => "]",
        _ => "}",
    }
}

/// Build the token tree for a lexed file.
pub fn build(lexed: &Lexed) -> Vec<Node> {
    let mut i = 0;
    parse_nodes(lexed, &mut i, None)
}

fn parse_nodes(lexed: &Lexed, i: &mut usize, until: Option<&str>) -> Vec<Node> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    while *i < toks.len() {
        let t = &toks[*i];
        let text = t.text.as_str();
        if let Some(closer) = until {
            if text == closer {
                return out;
            }
        }
        match text {
            "(" | "[" | "{" => {
                let open = *i;
                let delim = text.chars().next().unwrap_or('(');
                *i += 1;
                let children = parse_nodes(lexed, i, Some(closer_for(delim)));
                let close = if *i < toks.len() && toks[*i].text == closer_for(delim) {
                    let c = *i;
                    *i += 1;
                    Some(c)
                } else {
                    None
                };
                out.push(Node::Group(Group {
                    delim,
                    open,
                    close,
                    children,
                }));
            }
            // A closer that doesn't match the expected one: treat it as a
            // plain token so the rest of the file still gets a tree.
            ")" | "]" | "}" => {
                out.push(Node::Tok(*i));
                *i += 1;
            }
            _ => {
                out.push(Node::Tok(*i));
                *i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> (Lexed, Vec<Node>) {
        let l = lex(src);
        let t = build(&l);
        (l, t)
    }

    #[test]
    fn groups_nest() {
        let (l, t) = tree("fn f(a: u8) { g(a); }");
        // fn, f, (…), {…}
        assert_eq!(t.len(), 4);
        let Node::Group(body) = &t[3] else {
            panic!("expected body group, got {:?}", t[3])
        };
        assert_eq!(body.delim, '{');
        assert!(body.close.is_some());
        // body children: g, (…), ;
        assert_eq!(body.children.len(), 3);
        assert_eq!(t[3].line(&l), 1);
    }

    #[test]
    fn unbalanced_input_is_tolerated() {
        let (_, t) = tree("fn f() { let x = (1; }");
        assert!(!t.is_empty());
        let (_, t) = tree(") } ]");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn unterminated_group_runs_to_eof() {
        let (_, t) = tree("fn f() { a(b");
        let Node::Group(body) = &t[3] else {
            panic!("expected body group")
        };
        assert!(body.close.is_none());
    }
}
