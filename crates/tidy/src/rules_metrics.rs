//! M-rules: metric-name hygiene at the emission site.
//!
//! This file handles the *local* half — harvesting literal names and the
//! syntactic checks (`metric-prefix` for names without a dot-separated
//! subsystem prefix, `metric-unknown` for dynamic names the registry can
//! never vouch for). The *global* half — cross-checking harvested names
//! against `metrics.registry` in both directions — runs in
//! [`crate::run_check`] once every file has been scanned.

use crate::context::FileContext;
use crate::lexer::{Lexed, TokenKind};
use crate::rules::{METRIC_PREFIX, METRIC_UNKNOWN};

/// Emission methods whose first argument is the metric name.
const EMIT_METHODS: &[&str] = &["counter_add", "gauge_set", "observe"];

/// Registration methods that *reference* a metric by name without
/// emitting it: the time-series tracker (`SeriesConfig::track`) and the
/// SLO builder (`SloSpec::objective`). Literal names passed here must be
/// in the registry (a tracked-but-never-emitted name is a typo that
/// silently produces an empty series), but non-literal arguments are
/// not flagged — unlike emission sites, these method names are generic
/// enough (`track`, `objective`) to collide with unrelated APIs. For the
/// same reason only literals that already carry a dot-separated prefix
/// are harvested: a dotless literal to `.track(..)` is far more likely
/// someone else's API than a misnamed metric.
const REF_METHODS: &[&str] = &["track", "objective"];

/// One harvested literal metric name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricUse {
    /// The name with its quotes stripped.
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
    /// A `tidy: allow(metric-unknown)` waiver (with reason) covers this
    /// call — the registry cross-check must not re-flag it.
    pub unknown_waived: bool,
}

/// Scan one file: emit local M violations through `emit` and return the
/// harvested literal names for the registry cross-check. Test code is
/// skipped entirely — unit tests emit throwaway names into throwaway
/// collectors, and those must not pollute the registry.
pub fn scan_metrics(
    lexed: &Lexed,
    ctx: &FileContext,
    emit: &mut dyn FnMut(&'static str, u32, String),
) -> Vec<MetricUse> {
    let toks = &lexed.tokens;
    let mut uses = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        let is_emit = EMIT_METHODS.contains(&t.text.as_str());
        let is_ref = REF_METHODS.contains(&t.text.as_str());
        if t.kind != TokenKind::Ident
            || !(is_emit || is_ref)
            || i == 0
            || !lexed.is_punct(i - 1, ".")
            || !lexed.is_punct(i + 1, "(")
        {
            continue;
        }
        if ctx.is_test_line(t.line) {
            continue;
        }
        let Some(arg) = toks.get(i + 2) else { continue };
        if is_ref {
            // Registration/reference sites: harvest prefixed literals for
            // the registry cross-check, silently skip everything else.
            if arg.kind == TokenKind::Literal && arg.text.starts_with('"') {
                let name = arg.text.trim_matches('"').to_string();
                if name.contains('.') {
                    uses.push(MetricUse {
                        name,
                        line: t.line,
                        unknown_waived: ctx
                            .is_waived(METRIC_UNKNOWN, t.line)
                            .is_some_and(|w| w.has_reason),
                    });
                }
            }
            continue;
        }
        if arg.kind == TokenKind::Literal && arg.text.starts_with('"') {
            let name = arg.text.trim_matches('"').to_string();
            if !name.contains('.') {
                emit(
                    METRIC_PREFIX,
                    t.line,
                    format!(
                        "metric `{name}` has no dot-separated subsystem prefix — name it \
                         `<subsystem>.{name}` so dashboards can group by origin"
                    ),
                );
            }
            uses.push(MetricUse {
                name,
                line: t.line,
                unknown_waived: ctx
                    .is_waived(METRIC_UNKNOWN, t.line)
                    .is_some_and(|w| w.has_reason),
            });
        } else if lexed.is_ident(i + 2, "name") && lexed.is_punct(i + 3, ",") {
            // `fn counter_add(&self, name: &str, ..)` forwarding wrappers
            // (the obs API itself) pass the parameter straight through —
            // that is the implementation, not an emission site.
        } else {
            emit(
                METRIC_UNKNOWN,
                t.line,
                format!(
                    "dynamic metric name passed to `{}` — the registry cannot vouch for \
                     names built at runtime; use a literal, or waive with the closed set \
                     of names this expands to",
                    t.text
                ),
            );
        }
    }
    uses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str) -> (Vec<MetricUse>, Vec<(&'static str, u32)>) {
        let lexed = lex(src);
        let ctx = FileContext::build(&lexed);
        let mut v = Vec::new();
        let uses = scan_metrics(&lexed, &ctx, &mut |rule, line, _| v.push((rule, line)));
        (uses, v)
    }

    #[test]
    fn literal_names_are_harvested() {
        let (uses, v) = scan("fn f() { obs.counter_add(\"k8s.pods_started\", 1); }");
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].name, "k8s.pods_started");
        assert!(v.is_empty());
    }

    #[test]
    fn missing_prefix_flagged() {
        let (uses, v) = scan("fn f() { obs.observe(\"latency\", 0.5); }");
        assert_eq!(v, vec![(METRIC_PREFIX, 1)]);
        assert_eq!(uses.len(), 1); // still harvested for the registry check
    }

    #[test]
    fn dynamic_name_flagged() {
        let (uses, v) = scan("fn f(k: &str) { obs.counter_add(&format!(\"c.{k}\"), 1); }");
        assert_eq!(v, vec![(METRIC_UNKNOWN, 1)]);
        assert!(uses.is_empty());
    }

    #[test]
    fn forwarding_wrapper_is_not_an_emission_site() {
        let (uses, v) = scan(
            "impl Obs { pub fn counter_add(&self, name: &str, d: u64) {\n\
             self.inner.counter_add(name, d);\n} }",
        );
        assert!(uses.is_empty());
        assert!(v.is_empty());
    }

    #[test]
    fn test_code_names_are_ignored() {
        let (uses, v) =
            scan("#[cfg(test)]\nmod tests {\n fn t() { obs.counter_add(\"throwaway\", 1); }\n}");
        assert!(uses.is_empty());
        assert!(v.is_empty());
    }

    #[test]
    fn ref_methods_harvest_prefixed_literals() {
        let (uses, v) = scan(
            "fn f() { let s = SloSpec::new().objective(\"knative.request_s\", Pctl::P99, 1.0); \
             let c = SeriesConfig::every(secs(5.0)).track(\"condor.idle_jobs\"); }",
        );
        assert_eq!(uses.len(), 2);
        assert_eq!(uses[0].name, "knative.request_s");
        assert_eq!(uses[1].name, "condor.idle_jobs");
        assert!(v.is_empty());
    }

    #[test]
    fn ref_methods_skip_dynamic_and_dotless_arguments() {
        // `.track(handle)` and `.objective("mvp", ..)` belong to other
        // APIs — neither harvested nor flagged.
        let (uses, v) =
            scan("fn f(handle: &str) { gps.track(handle); plan.objective(\"mvp\", 3); }");
        assert!(uses.is_empty());
        assert!(v.is_empty());
    }

    #[test]
    fn waived_unknown_is_recorded() {
        let (uses, _) = scan(
            "fn f() {\n\
             // tidy: allow(metric-unknown) — closed set, documented in the registry\n\
             obs.observe(\"legacy.x\", 1.0); }",
        );
        assert!(uses[0].unknown_waived);
    }
}
