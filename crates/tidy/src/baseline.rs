//! The R1 unwrap baseline: a checked-in, counted debt ledger.
//!
//! Rather than waiving hundreds of pre-existing `unwrap()` sites line by
//! line, the baseline records one count per file. A file may never exceed
//! its recorded count (new panic sites are errors), and when a burn-down
//! shrinks a file's count the baseline must be re-blessed so the debt can
//! only ratchet downward — the same mechanism rustc's `tidy` uses for its
//! self-imposed limits.

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed baseline: workspace-relative path → allowed panic-family sites.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Allowed counts per file.
    pub counts: BTreeMap<String, usize>,
}

const HEADER: &str = "\
# swf-tidy R1 baseline — counted `unwrap()`/`expect()`/`panic!`-family sites
# per simulation-crate file (test code excluded). A file may never exceed
# its count; shrinking a count requires re-blessing so the debt only
# ratchets down. Regenerate with:
#
#   cargo run -p swf-tidy -- check --bless
#
";

impl Baseline {
    /// Parse the baseline file format: `<count> <path>` lines, `#`
    /// comments and blank lines ignored. Returns `Err` with a message for
    /// malformed lines (a corrupt baseline must fail loudly, not silently
    /// allow everything).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((count, path)) = line.split_once(' ') else {
                return Err(format!(
                    "baseline line {}: expected `<count> <path>`",
                    i + 1
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
            if counts.insert(path.trim().to_string(), count).is_some() {
                return Err(format!("baseline line {}: duplicate path `{path}`", i + 1));
            }
        }
        Ok(Baseline { counts })
    }

    /// Load from disk; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("cannot read baseline {}: {e}", path.display())),
        }
    }

    /// Render the canonical file content for the given actual counts
    /// (zero-count files are omitted).
    pub fn render(actual: &BTreeMap<String, usize>) -> String {
        let mut out = String::from(HEADER);
        for (path, count) in actual {
            if *count > 0 {
                out.push_str(&format!("{count} {path}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut actual = BTreeMap::new();
        actual.insert("crates/a/src/lib.rs".to_string(), 3);
        actual.insert("crates/b/src/x.rs".to_string(), 0);
        let text = Baseline::render(&actual);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.counts.len(), 1);
        assert_eq!(parsed.counts["crates/a/src/lib.rs"], 3);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Baseline::parse("nonsense").is_err());
        assert!(Baseline::parse("x crates/a.rs").is_err());
        assert!(Baseline::parse("3 a.rs\n3 a.rs").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = Baseline::parse("# header\n\n2 crates/a.rs\n").unwrap();
        assert_eq!(b.counts["crates/a.rs"], 2);
    }

    #[test]
    fn parse_errors_name_the_offending_line() {
        // The error must carry the 1-based line number so a corrupt
        // baseline points straight at the edit that broke it.
        let err = Baseline::parse("# header\n3 a.rs\nnonsense").unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        let err = Baseline::parse("x crates/a.rs").unwrap_err();
        assert!(err.contains("bad count `x`"), "{err}");
        let err = Baseline::parse("3 a.rs\n# gap\n2 a.rs").unwrap_err();
        assert!(err.contains("duplicate path `a.rs`"), "{err}");
        assert!(err.contains("line 3"), "{err}");
    }

    #[test]
    fn negative_and_overflowing_counts_are_rejected() {
        assert!(Baseline::parse("-1 a.rs").is_err());
        assert!(Baseline::parse("99999999999999999999999999 a.rs").is_err());
    }

    #[test]
    fn count_without_a_path_errors() {
        // `split_once(' ')` needs a separator: a bare count is malformed.
        let err = Baseline::parse("7").unwrap_err();
        assert!(err.contains("expected `<count> <path>`"), "{err}");
    }

    #[test]
    fn load_distinguishes_missing_from_unreadable() {
        let missing = Path::new("/nonexistent/definitely/not/here.baseline");
        assert_eq!(Baseline::load(missing).unwrap(), Baseline::default());
        // A directory is readable as a path but not as a file: loud error.
        assert!(Baseline::load(Path::new("/")).is_err());
    }
}
