//! `swf-tidy` — a self-contained determinism & robustness linter for the
//! simulated serverless-HPC stack, in the spirit of rustc's `tidy`.
//!
//! The whole reproduction rests on one invariant: a run is a pure function
//! of the program and its seeds (DESIGN.md "Determinism contract"). This
//! crate machine-checks the *source-level* preconditions for that with a
//! hand-rolled lexer and token-pattern rules — no `syn`, no dependencies,
//! works fully offline:
//!
//! - **D1** `wall-clock` / `real-thread` / `real-sync`: no
//!   `std::time::{Instant, SystemTime}`, `std::thread`, or
//!   `std::sync::{Mutex, RwLock}` in simulation crates — virtual time and
//!   the single-threaded executor only.
//! - **D2** `map-iter`: no iteration over `HashMap`/`HashSet` in
//!   simulation logic; use `BTreeMap`/`BTreeSet`, an explicit sort, or a
//!   `// tidy: allow(map-iter) — <reason>` waiver.
//! - **D3** `ambient-rng`: no `thread_rng`/`rand::random`/hasher-derived
//!   randomness outside `swf-simcore::rng`.
//! - **R1** `unwrap`: `unwrap()`/`expect()`/`panic!`-family sites in
//!   non-test simulation code are counted against a checked-in baseline
//!   ([`Baseline`]) that can only ratchet down.
//! - **S-rules**: every crate gates `missing_docs` and carries crate-level
//!   docs; every bench binary wires the uniform `--trace` flags
//!   (`bench-trace`) and the machine-readable `--json` record flag
//!   (`bench-json`).
//!
//! Run it as `cargo run -p swf-tidy -- check` (add `--json` for
//! machine-readable output, `--bless` to regenerate the baseline).

#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod context;
pub mod layers;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod rules_arith;
pub mod rules_async;
pub mod rules_float;
pub mod rules_metrics;
pub mod sarif;
pub mod tree;

use std::collections::BTreeMap;
use std::path::Path;

pub use baseline::Baseline;
pub use config::Config;
pub use rules::{ScanOptions, Violation};
pub use sarif::to_sarif;

/// The outcome of one full `check` pass.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All violations (A/D/C/M/L-rules, R1 baseline deltas, S-rules),
    /// sorted by file then line.
    pub violations: Vec<Violation>,
    /// Files scanned under the D/R rules.
    pub files_scanned: usize,
    /// Actual panic-family counts per file (input to `--bless`).
    pub unwrap_counts: BTreeMap<String, usize>,
    /// Total panic-family sites across all scanned files.
    pub unwrap_total: usize,
    /// Every literal metric name emitted in non-test code, sorted and
    /// deduplicated (input to `--bless` for `metrics.registry`).
    pub metric_names: std::collections::BTreeSet<String>,
}

impl Report {
    /// Did the check pass?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render as machine-readable JSON (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"ok\": ");
        out.push_str(if self.ok() { "true" } else { "false" });
        out.push_str(&format!(
            ",\n  \"files_scanned\": {},\n  \"unwrap_total\": {},\n  \"violations\": [",
            self.files_scanned, self.unwrap_total
        ));
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.message)
            ));
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (the only JSON we emit).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// reports. Silently skips unreadable directories (a linter must not
/// panic on a half-built tree).
fn rust_files(dir: &Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Run the full check: D/R rules over every simulation crate's `src/`
/// tree, the R1 baseline comparison, and the structural S-rules.
pub fn run_check(config: &Config) -> Result<Report, String> {
    let mut report = Report::default();
    let baseline = Baseline::load(&config.root.join(&config.baseline))?;
    let mut scanned = std::collections::BTreeSet::new();
    let mut metric_uses: Vec<(String, rules_metrics::MetricUse)> = Vec::new();

    for krate in &config.sim_crates {
        let src = config.root.join("crates").join(krate).join("src");
        for path in rust_files(&src) {
            let rel_path = rel(&config.root, &path);
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let opts = ScanOptions {
                check_ambient_rng: !config.rng_exempt.contains(&rel_path),
                check_arith: config.arith_paths.iter().any(|p| rel_path.contains(p)),
            };
            let mut scan = rules::scan_file(&rel_path, &source, opts);
            report.files_scanned += 1;
            report.violations.append(&mut scan.violations);
            report.unwrap_total += scan.unwrap_count;
            if scan.unwrap_count > 0 {
                report
                    .unwrap_counts
                    .insert(rel_path.clone(), scan.unwrap_count);
            }
            for u in std::mem::take(&mut scan.metric_uses) {
                report.metric_names.insert(u.name.clone());
                metric_uses.push((rel_path.clone(), u));
            }
            check_against_baseline(&rel_path, &scan, &baseline, &mut report.violations);
            scanned.insert(rel_path);
        }
    }

    if let Some(reg_path) = &config.metrics_registry {
        check_metric_registry(config, reg_path, &metric_uses, &mut report.violations);
    }

    // Baseline entries for files that no longer exist.
    for (path, allowed) in &baseline.counts {
        if *allowed > 0 && !scanned.contains(path) {
            report.violations.push(Violation {
                rule: rules::UNWRAP,
                file: path.clone(),
                line: 0,
                message: format!(
                    "baseline is stale: allows {allowed} panic-family sites but the file \
                     no longer exists — run `cargo run -p swf-tidy -- check --bless`"
                ),
            });
        }
    }

    if config.check_structure {
        check_structure(config, &mut report.violations);
    }

    layers::check_layers(config, &mut report.violations);

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// M-rules, global half: cross-check the harvested literal names against
/// the `metrics.registry` manifest, both directions.
fn check_metric_registry(
    config: &Config,
    reg_path: &str,
    metric_uses: &[(String, rules_metrics::MetricUse)],
    violations: &mut Vec<Violation>,
) {
    let registry = registry::Registry::load(&config.root.join(reg_path));
    for (file, u) in metric_uses {
        if registry.entries.contains_key(&u.name) || u.unknown_waived {
            continue;
        }
        violations.push(Violation {
            rule: rules::METRIC_UNKNOWN,
            file: file.clone(),
            line: u.line,
            message: format!(
                "metric `{}` is not in {reg_path} — a typo'd name means a silently-empty \
                 dashboard panel; fix the name or run `cargo run -p swf-tidy -- check \
                 --bless` to register it",
                u.name
            ),
        });
    }
    let used: std::collections::BTreeSet<&str> =
        metric_uses.iter().map(|(_, u)| u.name.as_str()).collect();
    for (name, line) in &registry.entries {
        if !used.contains(name.as_str()) {
            violations.push(Violation {
                rule: rules::METRIC_DEAD,
                file: reg_path.to_string(),
                line: *line,
                message: format!(
                    "registry entry `{name}` is no longer emitted anywhere — remove it \
                     (or run `--bless`) so dashboards don't reference dead series"
                ),
            });
        }
    }
    for (name, line) in &registry.duplicates {
        violations.push(Violation {
            rule: rules::METRIC_DEAD,
            file: reg_path.to_string(),
            line: *line,
            message: format!("duplicate registry entry `{name}`"),
        });
    }
}

/// Compare one file's R1 count against the baseline.
fn check_against_baseline(
    rel_path: &str,
    scan: &rules::FileScan,
    baseline: &Baseline,
    violations: &mut Vec<Violation>,
) {
    let allowed = baseline.counts.get(rel_path).copied().unwrap_or(0);
    if scan.unwrap_count > allowed {
        let fresh: Vec<String> = scan
            .unwrap_lines
            .iter()
            .rev()
            .take(scan.unwrap_count - allowed)
            .map(|l| l.to_string())
            .collect();
        violations.push(Violation {
            rule: rules::UNWRAP,
            file: rel_path.to_string(),
            line: *scan.unwrap_lines.last().unwrap_or(&0),
            message: format!(
                "{} panic-family sites but the baseline allows {} — convert the new \
                 ones (near lines {}) to typed errors, or re-bless if this is a \
                 deliberate, reviewed exception",
                scan.unwrap_count,
                allowed,
                fresh.join(", ")
            ),
        });
    } else if scan.unwrap_count < allowed {
        violations.push(Violation {
            rule: rules::UNWRAP,
            file: rel_path.to_string(),
            line: 0,
            message: format!(
                "good news: {} panic-family sites, baseline allows {} — run \
                 `cargo run -p swf-tidy -- check --bless` to ratchet the debt down",
                scan.unwrap_count, allowed
            ),
        });
    }
}

/// S-rules: crate docs gate and uniform bench tracing flags.
fn check_structure(config: &Config, violations: &mut Vec<Violation>) {
    let crates_dir = config.root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return;
    };
    let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs {
        let lib = dir.join("src/lib.rs");
        let Ok(source) = std::fs::read_to_string(&lib) else {
            continue;
        };
        let rel_path = rel(&config.root, &lib);
        if !source.contains("missing_docs") {
            violations.push(Violation {
                rule: rules::CRATE_DOCS,
                file: rel_path.clone(),
                line: 1,
                message: "crate does not gate its public API docs — add \
                          `#![warn(missing_docs)]` after the crate docs"
                    .into(),
            });
        }
        if !source.trim_start().starts_with("//!") {
            violations.push(Violation {
                rule: rules::CRATE_DOCS,
                file: rel_path,
                line: 1,
                message: "crate has no crate-level `//!` documentation header".into(),
            });
        }
    }

    // Every bench binary must wire the shared tracing CLI (`--trace` /
    // `--trace-out`) through swf-bench's helpers.
    let bins = config.root.join("crates/bench/src/bin");
    for path in rust_files(&bins) {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel_path = rel(&config.root, &path);
        let wired = source.contains("install_cli_obs")
            || source.contains("dump_observability")
            || source.contains("cli_config")
            || source.contains("write_chrome_trace");
        if !wired {
            violations.push(Violation {
                rule: rules::BENCH_TRACE,
                file: rel_path.clone(),
                line: 1,
                message: "bench binary does not wire the uniform tracing CLI — use \
                          `swf_bench::install_cli_obs()` / `dump_observability()`"
                    .into(),
            });
        }
        if !source.contains("--trace") {
            violations.push(Violation {
                rule: rules::BENCH_TRACE,
                file: rel_path.clone(),
                line: 1,
                message: "bench binary usage header does not document the `--trace` / \
                          `--trace-out` flags"
                    .into(),
            });
        }

        // S3: every bench binary must also emit the machine-readable
        // `BENCH_*.json` record on request, through the shared helpers.
        let json_wired = source.contains("emit_scenario_json") || source.contains("json_out");
        if !json_wired {
            violations.push(Violation {
                rule: rules::BENCH_JSON,
                file: rel_path.clone(),
                line: 1,
                message: "bench binary does not wire the `--json` record flag — use \
                          `swf_bench::emit_scenario_json()` (or `json_out()` directly)"
                    .into(),
            });
        }
        if !source.contains("--json") {
            violations.push(Violation {
                rule: rules::BENCH_JSON,
                file: rel_path,
                line: 1,
                message: "bench binary usage header does not document the `--json <path>` \
                          flag"
                    .into(),
            });
        }
    }
}

/// Regenerate the ratchet files from the current tree: the R1 unwrap
/// baseline and (when configured) the metric-name registry. Returns the
/// rendered baseline content that was written.
pub fn bless(config: &Config) -> Result<String, String> {
    let mut probe = config.clone();
    probe.check_structure = false;
    let report = run_check(&probe)?;
    let content = Baseline::render(&report.unwrap_counts);
    let path = config.root.join(&config.baseline);
    std::fs::write(&path, &content).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    if let Some(reg_path) = &config.metrics_registry {
        let reg = registry::Registry::render(report.metric_names.iter().map(String::as_str));
        let path = config.root.join(reg_path);
        std::fs::write(&path, reg).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(content)
}
