//! CLI entry point: `cargo run -p swf-tidy -- check [--format json|sarif]
//! [--bless]`.

use std::process::ExitCode;

use swf_tidy::{bless, run_check, to_sarif, Config};

const USAGE: &str = "\
swf-tidy — determinism & robustness linter for the simulated stack

USAGE:
    cargo run -p swf-tidy -- check [OPTIONS]

OPTIONS:
    --format <FMT>  output format: text (default), json, or sarif
    --json          shorthand for --format json
    --bless         regenerate the ratchet files (R1 unwrap baseline and
                    the metric-name registry) from the current tree
    --root <DIR>    workspace root (default: auto-detected)
    -h, --help      this help

EXIT CODES:
    0  clean (no non-baselined violations)
    1  violations found
    2  usage or I/O error
";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut format = Format::Text;
    let mut do_bless = false;
    let mut root = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--json" => format = Format::Json,
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!(
                            "error: --format expects text, json or sarif (got {})",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--bless" => do_bless = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(std::path::PathBuf::from(dir)),
                    None => {
                        eprintln!("error: --root requires a directory argument");
                        return ExitCode::from(2);
                    }
                }
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if command != Some("check") {
        eprintln!("error: expected the `check` subcommand\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root.or_else(Config::find_root) {
        Some(r) => r,
        None => {
            eprintln!("error: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    let config = Config::repo(root);

    if do_bless {
        return match bless(&config) {
            Ok(content) => {
                let entries = content
                    .lines()
                    .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
                    .count();
                eprintln!(
                    "blessed {} → {entries} files carrying R1 debt",
                    config.baseline
                );
                if let Some(reg) = &config.metrics_registry {
                    eprintln!("blessed {reg} from the tree's literal metric names");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    match run_check(&config) {
        Ok(report) => {
            match format {
                Format::Json => print!("{}", report.to_json()),
                Format::Sarif => print!("{}", to_sarif(&report)),
                Format::Text if report.ok() => {
                    eprintln!(
                        "tidy: {} files clean ({} baselined panic-family sites)",
                        report.files_scanned, report.unwrap_total
                    );
                }
                Format::Text => {
                    for v in &report.violations {
                        eprintln!("{}", v.render());
                    }
                    eprintln!(
                        "\ntidy: {} violation(s) in {} files scanned — see DESIGN.md \
                         \"Static analysis architecture\" for the rules and waiver format",
                        report.violations.len(),
                        report.files_scanned
                    );
                }
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
