//! CLI entry point: `cargo run -p swf-tidy -- check [--json] [--bless]`.

use std::process::ExitCode;

use swf_tidy::{bless, run_check, Config};

const USAGE: &str = "\
swf-tidy — determinism & robustness linter for the simulated stack

USAGE:
    cargo run -p swf-tidy -- check [OPTIONS]

OPTIONS:
    --json          machine-readable JSON report on stdout
    --bless         regenerate the R1 unwrap baseline from current counts
    --root <DIR>    workspace root (default: auto-detected)
    -h, --help      this help

EXIT CODES:
    0  clean (no non-baselined violations)
    1  violations found
    2  usage or I/O error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut json = false;
    let mut do_bless = false;
    let mut root = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--json" => json = true,
            "--bless" => do_bless = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(std::path::PathBuf::from(dir)),
                    None => {
                        eprintln!("error: --root requires a directory argument");
                        return ExitCode::from(2);
                    }
                }
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if command != Some("check") {
        eprintln!("error: expected the `check` subcommand\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root.or_else(Config::find_root) {
        Some(r) => r,
        None => {
            eprintln!("error: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    let config = Config::repo(root);

    if do_bless {
        return match bless(&config) {
            Ok(content) => {
                let entries = content
                    .lines()
                    .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
                    .count();
                eprintln!(
                    "blessed {} → {entries} files carrying R1 debt",
                    config.baseline
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    match run_check(&config) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else if report.ok() {
                eprintln!(
                    "tidy: {} files clean ({} baselined panic-family sites)",
                    report.files_scanned, report.unwrap_total
                );
            } else {
                for v in &report.violations {
                    eprintln!("{}", v.render());
                }
                eprintln!(
                    "\ntidy: {} violation(s) in {} files scanned — see DESIGN.md \
                     \"Determinism contract\" for the rules and waiver format",
                    report.violations.len(),
                    report.files_scanned
                );
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
