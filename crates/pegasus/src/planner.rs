//! The planner: abstract workflow → executable HTCondor DAG.
//!
//! Responsibilities mirrored from Pegasus: resolve transformations from the
//! catalog, check external inputs against the replica catalog, derive the
//! dependency DAG from file relations, optionally *cluster* linear chains
//! of same-venue tasks (Pegasus' task clustering / the paper's §IX-C task
//! resizing), and emit one Condor job per planned task through a pluggable
//! [`JobFactory`] so execution venues (native / container / serverless) are
//! decided by the integration layer.

use std::rc::Rc;

use bytes::Bytes;

use swf_condor::{DagSpec, JobContext, JobFn, JobSpec};
use swf_simcore::SimDuration;
use swf_workloads::ExecEnv;

use crate::abstract_wf::{AbstractWorkflow, TaskLogic, WorkflowError};
use crate::catalog::{ReplicaCatalog, TransformationCatalog};

/// A fully resolved task ready for venue binding.
#[derive(Clone)]
pub struct PlannedTask {
    /// Task name (cluster names join constituents with `+`).
    pub name: String,
    /// Files staged into the sandbox before execution.
    pub inputs: Vec<String>,
    /// Files staged out of the sandbox after execution.
    pub outputs: Vec<String>,
    /// Modelled single-core compute time (summed across a cluster).
    pub compute: SimDuration,
    /// Composed real computation.
    pub logic: TaskLogic,
    /// Container image when the venue needs one.
    pub container_image: Option<String>,
    /// Execution venue.
    pub env: ExecEnv,
    /// Number of abstract jobs merged into this task (1 = unclustered).
    pub clustered: usize,
    /// Logical transformation name (head transformation for clusters).
    pub transformation: String,
}

/// Builds the Condor job program for one planned task.
pub trait JobFactory {
    /// Produce the job function for `task`.
    fn build(&self, task: &PlannedTask) -> JobFn;

    /// Extra files the venue needs staged into the sandbox alongside the
    /// task's declared inputs (e.g. a container image tarball transferred
    /// per job, as Pegasus does for containerized tasks).
    fn extra_inputs(&self, _task: &PlannedTask) -> Vec<String> {
        Vec::new()
    }
}

/// Planner errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Workflow validation failed.
    Workflow(WorkflowError),
    /// A job references an unregistered transformation.
    UnknownTransformation(String),
    /// An external input has no replica registered.
    UnstagedInput(String),
    /// The emitted Condor DAG was rejected (bad edge, cycle).
    Dag(swf_condor::CondorError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Workflow(e) => write!(f, "invalid workflow: {e}"),
            PlanError::UnknownTransformation(t) => write!(f, "unknown transformation: {t}"),
            PlanError::UnstagedInput(p) => write!(f, "external input not in replica catalog: {p}"),
            PlanError::Dag(e) => write!(f, "invalid DAG: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<WorkflowError> for PlanError {
    fn from(e: WorkflowError) -> Self {
        PlanError::Workflow(e)
    }
}

/// Planner options.
#[derive(Clone, Copy, Debug)]
pub struct PlanOptions {
    /// Maximum tasks merged per linear cluster (1 disables clustering).
    pub cluster_level: usize,
    /// Condor-level retries per DAG node.
    pub retries: u32,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            cluster_level: 1,
            retries: 0,
        }
    }
}

/// The executable workflow: a Condor DAG plus planning metadata.
pub struct ExecutableWorkflow {
    /// The DAG handed to DAGMan.
    pub dag: DagSpec,
    /// Planned tasks in DAG-node order.
    pub tasks: Vec<PlannedTask>,
}

impl std::fmt::Debug for ExecutableWorkflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutableWorkflow")
            .field("nodes", &self.dag.len())
            .field(
                "tasks",
                &self
                    .tasks
                    .iter()
                    .map(|t| t.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Plan an abstract workflow into an executable one.
pub fn plan(
    wf: &AbstractWorkflow,
    tcat: &TransformationCatalog,
    rcat: &ReplicaCatalog,
    factory: &dyn JobFactory,
    options: PlanOptions,
) -> Result<ExecutableWorkflow, PlanError> {
    let edges = wf.derive_dependencies()?;
    for ext in wf.external_inputs() {
        if !rcat.contains(&ext) {
            return Err(PlanError::UnstagedInput(ext));
        }
    }
    // Resolve transformations.
    let mut resolved: Vec<PlannedTask> = Vec::with_capacity(wf.len());
    for job in wf.jobs() {
        let t = tcat
            .lookup(&job.transformation)
            .ok_or_else(|| PlanError::UnknownTransformation(job.transformation.clone()))?;
        resolved.push(PlannedTask {
            name: job.name.clone(),
            inputs: job.inputs.clone(),
            outputs: job.outputs.clone(),
            compute: t.compute,
            logic: t.logic.clone(),
            container_image: t.container_image.clone(),
            env: job.env,
            clustered: 1,
            transformation: job.transformation.clone(),
        });
    }

    // Optional linear-chain clustering.
    let (tasks, edges) = if options.cluster_level > 1 {
        cluster_chains(resolved, &edges, options.cluster_level)
    } else {
        (resolved, edges.clone())
    };

    // Emit the Condor DAG.
    let mut dag = DagSpec::named(wf.name.clone());
    for task in &tasks {
        let program = factory.build(task);
        let mut input_files = task.inputs.clone();
        input_files.extend(factory.extra_inputs(task));
        let spec = JobSpec {
            program,
            requirements: swf_condor::Expr::True,
            request_cpus: 1,
            request_memory: swf_cluster::mib(512),
            input_files,
            output_files: task.outputs.clone(),
            priority: 0,
            ad: swf_condor::ClassAd::new(),
            span: swf_obs::SpanContext::NONE,
        };
        dag.add_node_with_retries(task.name.clone(), spec, options.retries);
    }
    for (p, c) in edges {
        dag.add_edge(p, c).map_err(PlanError::Dag)?;
    }
    Ok(ExecutableWorkflow { dag, tasks })
}

/// Merge linear same-venue chains into clusters of at most `level` tasks.
/// A merge happens when a task's *primary* output (outputs[0]) is consumed
/// as the *primary* input (inputs[0]) of exactly one child with the same
/// venue, and neither task participates in other dependencies.
fn cluster_chains(
    tasks: Vec<PlannedTask>,
    edges: &[(usize, usize)],
    level: usize,
) -> (Vec<PlannedTask>, Vec<(usize, usize)>) {
    let n = tasks.len();
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(p, c) in edges {
        out_edges[p].push(c);
        in_edges[c].push(p);
    }
    // Identify chain successors.
    let mut next: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        if out_edges[i].len() != 1 {
            continue;
        }
        let c = out_edges[i][0];
        if in_edges[c].len() != 1 {
            continue;
        }
        if tasks[i].env != tasks[c].env {
            continue;
        }
        let primary_out = match tasks[i].outputs.first() {
            Some(o) => o,
            None => continue,
        };
        if tasks[c].inputs.first() != Some(primary_out) {
            continue;
        }
        next[i] = Some(c);
    }
    let mut has_pred_in_chain = vec![false; n];
    for &c in next.iter().flatten() {
        has_pred_in_chain[c] = true;
    }
    // Build clusters greedily from chain heads.
    let mut cluster_of = vec![usize::MAX; n];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for head in 0..n {
        if has_pred_in_chain[head] || cluster_of[head] != usize::MAX {
            continue;
        }
        let mut chain = vec![head];
        let mut cur = head;
        while chain.len() < level {
            match next[cur] {
                Some(c) if cluster_of[c] == usize::MAX => {
                    chain.push(c);
                    cur = c;
                }
                _ => break,
            }
        }
        for &m in &chain {
            cluster_of[m] = clusters.len();
        }
        clusters.push(chain);
        // Remaining tail of a long chain starts a fresh cluster next loop:
        // mark the next link as a head by clearing its predecessor flag.
        if let Some(c) = next[cur] {
            if cluster_of[c] == usize::MAX {
                has_pred_in_chain[c] = false;
            }
        }
    }
    // Compose clustered tasks.
    let mut new_tasks: Vec<PlannedTask> = Vec::with_capacity(clusters.len());
    for members in &clusters {
        if members.len() == 1 {
            new_tasks.push(tasks[members[0]].clone());
            continue;
        }
        let head = &tasks[members[0]];
        let mut inputs = head.inputs.clone();
        let mut compute = head.compute;
        let mut stages: Vec<(TaskLogic, usize)> = Vec::new();
        stages.push((head.logic.clone(), head.inputs.len()));
        // Outputs consumed only inside the cluster are elided.
        let member_set: std::collections::BTreeSet<usize> = members.iter().copied().collect();
        let mut outputs: Vec<String> = Vec::new();
        for (pos, &m) in members.iter().enumerate() {
            let t = &tasks[m];
            if pos > 0 {
                // Secondary inputs join the cluster inputs.
                inputs.extend(t.inputs.iter().skip(1).cloned());
                compute += t.compute;
                stages.push((t.logic.clone(), t.inputs.len() - 1));
            }
            // Keep an output if any consumer is outside the cluster, or if
            // nothing consumes it (final artifact).
            for (oi, o) in t.outputs.iter().enumerate() {
                let consumed_inside = pos + 1 < members.len()
                    && oi == 0
                    && out_edges[m].iter().all(|c| member_set.contains(c));
                if !consumed_inside {
                    outputs.push(o.clone());
                }
            }
        }
        let composed_stages = stages;
        let logic: TaskLogic = Rc::new(move |all_inputs: Vec<Bytes>| {
            let mut iter = all_inputs.into_iter();
            let (first_logic, first_arity) = &composed_stages[0];
            let first_in: Vec<Bytes> = iter.by_ref().take(*first_arity).collect();
            let mut outs = first_logic(first_in)?;
            for (logic, extra) in &composed_stages[1..] {
                let mut ins = Vec::with_capacity(extra + 1);
                ins.push(
                    outs.first()
                        .cloned()
                        .ok_or("cluster stage produced no output")?,
                );
                ins.extend(iter.by_ref().take(*extra));
                outs = logic(ins)?;
            }
            Ok(outs)
        });
        new_tasks.push(PlannedTask {
            name: members
                .iter()
                .map(|&m| tasks[m].name.as_str())
                .collect::<Vec<_>>()
                .join("+"),
            inputs,
            outputs,
            compute,
            logic,
            container_image: head.container_image.clone(),
            env: head.env,
            clustered: members.len(),
            transformation: head.transformation.clone(),
        });
    }
    // Remap edges between clusters.
    let mut new_edges: Vec<(usize, usize)> = Vec::new();
    for &(p, c) in edges {
        let (cp, cc) = (cluster_of[p], cluster_of[c]);
        if cp != cc && !new_edges.contains(&(cp, cc)) {
            new_edges.push((cp, cc));
        }
    }
    (new_tasks, new_edges)
}

/// The built-in native venue: read sandbox inputs, charge compute, run the
/// logic, write sandbox outputs. Other venues (container, serverless) are
/// provided by the integration crate.
pub struct NativeFactory;

impl JobFactory for NativeFactory {
    fn build(&self, task: &PlannedTask) -> JobFn {
        let task = task.clone();
        Rc::new(move |ctx: JobContext| {
            let task = task.clone();
            Box::pin(async move { run_native(&task, &ctx).await })
        })
    }
}

/// Shared native execution path (also used as the tail of other venues).
pub async fn run_native(task: &PlannedTask, ctx: &JobContext) -> Result<Bytes, String> {
    let mut payloads = Vec::with_capacity(task.inputs.len());
    for f in &task.inputs {
        let data = ctx
            .node
            .fs()
            .read(&ctx.sandbox_path(f))
            .await
            .map_err(|e| e.to_string())?;
        payloads.push(data);
    }
    ctx.compute(task.compute).await;
    let outs = (task.logic)(payloads)?;
    if outs.len() != task.outputs.len() {
        return Err(format!(
            "{} produced {} outputs, expected {}",
            task.name,
            outs.len(),
            task.outputs.len()
        ));
    }
    for (name, data) in task.outputs.iter().zip(outs) {
        ctx.node.fs().write(ctx.sandbox_path(name), data).await;
    }
    Ok(Bytes::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_wf::{AbstractJob, Transformation};
    use crate::catalog::ReplicaLocation;
    use swf_simcore::secs;

    fn concat_logic(inputs: Vec<Bytes>) -> Result<Vec<Bytes>, String> {
        let mut all = Vec::new();
        for i in &inputs {
            all.extend_from_slice(i);
        }
        Ok(vec![Bytes::from(all)])
    }

    fn chain_workflow(
        n: usize,
        env: ExecEnv,
    ) -> (AbstractWorkflow, TransformationCatalog, ReplicaCatalog) {
        let tcat = TransformationCatalog::new();
        tcat.register(Transformation::new("concat", secs(0.1), concat_logic));
        let rcat = ReplicaCatalog::new();
        rcat.register("seed", ReplicaLocation::SharedFs("seed".into()));
        let mut wf = AbstractWorkflow::new("chain");
        for t in 0..n {
            let input_a = if t == 0 {
                "seed".to_string()
            } else {
                format!("out{}", t - 1)
            };
            let input_b = format!("side{t}");
            rcat.register(&input_b, ReplicaLocation::SharedFs(input_b.clone()));
            wf.add_job(AbstractJob {
                name: format!("t{t}"),
                transformation: "concat".into(),
                inputs: vec![input_a, input_b],
                outputs: vec![format!("out{t}")],
                env,
            });
        }
        (wf, tcat, rcat)
    }

    #[test]
    fn plan_produces_one_node_per_job() {
        let (wf, tcat, rcat) = chain_workflow(5, ExecEnv::Native);
        let exec = plan(&wf, &tcat, &rcat, &NativeFactory, PlanOptions::default()).unwrap();
        assert_eq!(exec.dag.len(), 5);
        assert_eq!(exec.tasks.len(), 5);
        assert!(exec.tasks.iter().all(|t| t.clustered == 1));
    }

    #[test]
    fn unknown_transformation_is_rejected() {
        let (mut wf, tcat, rcat) = chain_workflow(1, ExecEnv::Native);
        wf.add_job(AbstractJob {
            name: "x".into(),
            transformation: "ghost".into(),
            inputs: vec![],
            outputs: vec!["xo".into()],
            env: ExecEnv::Native,
        });
        let err = plan(&wf, &tcat, &rcat, &NativeFactory, PlanOptions::default()).unwrap_err();
        assert_eq!(err, PlanError::UnknownTransformation("ghost".into()));
    }

    #[test]
    fn unstaged_external_input_is_rejected() {
        let tcat = TransformationCatalog::new();
        tcat.register(Transformation::new("concat", secs(0.1), concat_logic));
        let rcat = ReplicaCatalog::new();
        let mut wf = AbstractWorkflow::new("w");
        wf.add_job(AbstractJob {
            name: "a".into(),
            transformation: "concat".into(),
            inputs: vec!["not-staged".into()],
            outputs: vec!["o".into()],
            env: ExecEnv::Native,
        });
        let err = plan(&wf, &tcat, &rcat, &NativeFactory, PlanOptions::default()).unwrap_err();
        assert_eq!(err, PlanError::UnstagedInput("not-staged".into()));
    }

    #[test]
    fn clustering_merges_chains_to_level() {
        let (wf, tcat, rcat) = chain_workflow(10, ExecEnv::Native);
        let exec = plan(
            &wf,
            &tcat,
            &rcat,
            &NativeFactory,
            PlanOptions {
                cluster_level: 5,
                retries: 0,
            },
        )
        .unwrap();
        assert_eq!(exec.dag.len(), 2);
        assert_eq!(exec.tasks[0].clustered, 5);
        assert_eq!(exec.tasks[0].name, "t0+t1+t2+t3+t4");
        // Cluster inputs: seed + side0 + side1..4 = 6.
        assert_eq!(exec.tasks[0].inputs.len(), 6);
        // Only the boundary output survives.
        assert_eq!(exec.tasks[0].outputs, vec!["out4".to_string()]);
        // Compute sums.
        assert_eq!(exec.tasks[0].compute, secs(0.5));
    }

    #[test]
    fn clustering_respects_env_boundaries() {
        let tcat = TransformationCatalog::new();
        tcat.register(Transformation::new("concat", secs(0.1), concat_logic));
        let rcat = ReplicaCatalog::new();
        rcat.register("seed", ReplicaLocation::SharedFs("seed".into()));
        let mut wf = AbstractWorkflow::new("mixed");
        for t in 0..4 {
            let env = if t < 2 {
                ExecEnv::Native
            } else {
                ExecEnv::Serverless
            };
            let input_a = if t == 0 {
                "seed".to_string()
            } else {
                format!("out{}", t - 1)
            };
            wf.add_job(AbstractJob {
                name: format!("t{t}"),
                transformation: "concat".into(),
                inputs: vec![input_a],
                outputs: vec![format!("out{t}")],
                env,
            });
        }
        let exec = plan(
            &wf,
            &tcat,
            &rcat,
            &NativeFactory,
            PlanOptions {
                cluster_level: 4,
                retries: 0,
            },
        )
        .unwrap();
        // Two clusters of two: env boundary blocks the merge.
        assert_eq!(exec.dag.len(), 2);
        assert_eq!(exec.tasks[0].clustered, 2);
        assert_eq!(exec.tasks[1].clustered, 2);
    }

    #[test]
    fn clustered_logic_composes_correctly() {
        let (wf, tcat, rcat) = chain_workflow(3, ExecEnv::Native);
        let exec = plan(
            &wf,
            &tcat,
            &rcat,
            &NativeFactory,
            PlanOptions {
                cluster_level: 3,
                retries: 0,
            },
        )
        .unwrap();
        assert_eq!(exec.tasks.len(), 1);
        let t = &exec.tasks[0];
        // inputs: seed, side0, side1, side2
        let outs = (t.logic)(vec![
            Bytes::from_static(b"S"),
            Bytes::from_static(b"0"),
            Bytes::from_static(b"1"),
            Bytes::from_static(b"2"),
        ])
        .unwrap();
        // t0: S+0 = "S0"; t1: "S0"+1 = "S01"; t2: "S01"+2 = "S012".
        assert_eq!(&outs[0][..], b"S012");
    }

    #[test]
    fn fanout_is_never_clustered() {
        let tcat = TransformationCatalog::new();
        tcat.register(Transformation::new("concat", secs(0.1), concat_logic));
        let rcat = ReplicaCatalog::new();
        rcat.register("seed", ReplicaLocation::SharedFs("seed".into()));
        let mut wf = AbstractWorkflow::new("fan");
        wf.add_job(AbstractJob {
            name: "src".into(),
            transformation: "concat".into(),
            inputs: vec!["seed".into()],
            outputs: vec!["m".into()],
            env: ExecEnv::Native,
        });
        for i in 0..2 {
            wf.add_job(AbstractJob {
                name: format!("leaf{i}"),
                transformation: "concat".into(),
                inputs: vec!["m".into()],
                outputs: vec![format!("leaf{i}_out")],
                env: ExecEnv::Native,
            });
        }
        let exec = plan(
            &wf,
            &tcat,
            &rcat,
            &NativeFactory,
            PlanOptions {
                cluster_level: 3,
                retries: 0,
            },
        )
        .unwrap();
        assert_eq!(exec.dag.len(), 3); // no merging across the fan-out
    }
}
