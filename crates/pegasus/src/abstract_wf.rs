//! Abstract workflows: the DAX layer of Pegasus.
//!
//! A workflow developer describes *transformations* (logical executables),
//! *files* and *jobs* referencing both; data dependencies are derived from
//! producer/consumer file relations, never declared explicitly — exactly
//! Pegasus' model.

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use bytes::Bytes;

use swf_simcore::SimDuration;
use swf_workloads::ExecEnv;

/// Logical task computation: ordered input payloads → ordered outputs.
pub type TaskLogic = Rc<dyn Fn(Vec<Bytes>) -> Result<Vec<Bytes>, String>>;

/// A logical executable registered in the transformation catalog.
#[derive(Clone)]
pub struct Transformation {
    /// Logical name (`matmul`).
    pub name: String,
    /// Real computation.
    pub logic: TaskLogic,
    /// Modelled single-core compute time per invocation.
    pub compute: SimDuration,
    /// Container image (name:tag) for containerized/serverless execution.
    pub container_image: Option<String>,
}

impl Transformation {
    /// New transformation.
    pub fn new(
        name: impl Into<String>,
        compute: SimDuration,
        logic: impl Fn(Vec<Bytes>) -> Result<Vec<Bytes>, String> + 'static,
    ) -> Self {
        Transformation {
            name: name.into(),
            logic: Rc::new(logic),
            compute,
            container_image: None,
        }
    }

    /// Attach a container image (builder style).
    pub fn with_container(mut self, image: impl Into<String>) -> Self {
        self.container_image = Some(image.into());
        self
    }
}

/// One abstract job: an invocation of a transformation.
#[derive(Clone)]
pub struct AbstractJob {
    /// Job name, unique in the workflow.
    pub name: String,
    /// Transformation name (must exist in the catalog at plan time).
    pub transformation: String,
    /// Input files, in the order the transformation expects them.
    pub inputs: Vec<String>,
    /// Output files, in the order the transformation produces them.
    pub outputs: Vec<String>,
    /// Execution venue chosen for this job (the paper assigns one of the
    /// three setups per task before the run).
    pub env: ExecEnv,
}

/// Validation errors for abstract workflows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// Two jobs produce the same file.
    DuplicateProducer(String),
    /// Two jobs share a name.
    DuplicateJob(String),
    /// Dependencies contain a cycle.
    Cyclic,
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::DuplicateProducer(file) => {
                write!(f, "file {file} has more than one producer")
            }
            WorkflowError::DuplicateJob(name) => write!(f, "duplicate job name {name}"),
            WorkflowError::Cyclic => write!(f, "workflow has a dependency cycle"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// An abstract workflow (DAX).
#[derive(Clone, Default)]
pub struct AbstractWorkflow {
    /// Workflow name.
    pub name: String,
    jobs: Vec<AbstractJob>,
}

impl AbstractWorkflow {
    /// Empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        AbstractWorkflow {
            name: name.into(),
            jobs: Vec::new(),
        }
    }

    /// Append a job; returns its index.
    pub fn add_job(&mut self, job: AbstractJob) -> usize {
        self.jobs.push(job);
        self.jobs.len() - 1
    }

    /// The jobs in insertion order.
    pub fn jobs(&self) -> &[AbstractJob] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the workflow has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Files consumed but produced by no job (must be staged beforehand).
    pub fn external_inputs(&self) -> Vec<String> {
        let produced: BTreeSet<&String> = self.jobs.iter().flat_map(|j| j.outputs.iter()).collect();
        let mut ext: BTreeSet<String> = BTreeSet::new();
        for j in &self.jobs {
            for i in &j.inputs {
                if !produced.contains(i) {
                    ext.insert(i.clone());
                }
            }
        }
        ext.into_iter().collect()
    }

    /// Derive edges `(producer_idx, consumer_idx)` from file relations and
    /// validate the workflow.
    pub fn derive_dependencies(&self) -> Result<Vec<(usize, usize)>, WorkflowError> {
        let mut names = BTreeSet::new();
        for j in &self.jobs {
            if !names.insert(&j.name) {
                return Err(WorkflowError::DuplicateJob(j.name.clone()));
            }
        }
        let mut producer: BTreeMap<&String, usize> = BTreeMap::new();
        for (idx, j) in self.jobs.iter().enumerate() {
            for out in &j.outputs {
                if producer.insert(out, idx).is_some() {
                    return Err(WorkflowError::DuplicateProducer(out.clone()));
                }
            }
        }
        let mut edges = Vec::new();
        for (idx, j) in self.jobs.iter().enumerate() {
            for input in &j.inputs {
                if let Some(&p) = producer.get(input) {
                    if p == idx {
                        return Err(WorkflowError::Cyclic);
                    }
                    edges.push((p, idx));
                }
            }
        }
        // Cycle check (Kahn).
        let n = self.jobs.len();
        let mut indeg = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(p, c) in &edges {
            indeg[c] += 1;
            children[p].push(c);
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(x) = queue.pop() {
            seen += 1;
            for &c in &children[x] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if seen != n {
            return Err(WorkflowError::Cyclic);
        }
        Ok(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, inputs: &[&str], outputs: &[&str]) -> AbstractJob {
        AbstractJob {
            name: name.into(),
            transformation: "matmul".into(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            env: ExecEnv::Native,
        }
    }

    #[test]
    fn dependencies_derive_from_files() {
        let mut wf = AbstractWorkflow::new("chain");
        wf.add_job(job("t0", &["seed_a", "seed_b0"], &["out0"]));
        wf.add_job(job("t1", &["out0", "seed_b1"], &["out1"]));
        wf.add_job(job("t2", &["out1", "seed_b2"], &["out2"]));
        let edges = wf.derive_dependencies().unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
        assert_eq!(
            wf.external_inputs(),
            vec!["seed_a", "seed_b0", "seed_b1", "seed_b2"]
        );
    }

    #[test]
    fn duplicate_producer_rejected() {
        let mut wf = AbstractWorkflow::new("bad");
        wf.add_job(job("a", &[], &["x"]));
        wf.add_job(job("b", &[], &["x"]));
        assert_eq!(
            wf.derive_dependencies(),
            Err(WorkflowError::DuplicateProducer("x".into()))
        );
    }

    #[test]
    fn duplicate_job_name_rejected() {
        let mut wf = AbstractWorkflow::new("bad");
        wf.add_job(job("a", &[], &["x"]));
        wf.add_job(job("a", &[], &["y"]));
        assert_eq!(
            wf.derive_dependencies(),
            Err(WorkflowError::DuplicateJob("a".into()))
        );
    }

    #[test]
    fn self_and_mutual_cycles_rejected() {
        let mut wf = AbstractWorkflow::new("selfloop");
        wf.add_job(job("a", &["x"], &["x"]));
        assert_eq!(wf.derive_dependencies(), Err(WorkflowError::Cyclic));

        let mut wf2 = AbstractWorkflow::new("mutual");
        wf2.add_job(job("a", &["y"], &["x"]));
        wf2.add_job(job("b", &["x"], &["y"]));
        assert_eq!(wf2.derive_dependencies(), Err(WorkflowError::Cyclic));
    }

    #[test]
    fn fanout_fanin_edges() {
        let mut wf = AbstractWorkflow::new("diamond");
        wf.add_job(job("src", &["seed"], &["m"]));
        wf.add_job(job("l", &["m"], &["lo"]));
        wf.add_job(job("r", &["m"], &["ro"]));
        wf.add_job(job("sink", &["lo", "ro"], &["final"]));
        let mut edges = wf.derive_dependencies().unwrap();
        edges.sort();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn transformation_builder() {
        let t = Transformation::new("matmul", SimDuration::from_millis(458), |inputs| {
            Ok(vec![inputs[0].clone()])
        })
        .with_container("hpc/matmul:1.0");
        assert_eq!(t.container_image.as_deref(), Some("hpc/matmul:1.0"));
        let out = (t.logic)(vec![Bytes::from_static(b"z")]).unwrap();
        assert_eq!(&out[0][..], b"z");
    }
}
