//! Pegasus catalogs: transformations, replicas, sites.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::abstract_wf::Transformation;

/// The transformation catalog: logical name → executable description.
#[derive(Clone, Default)]
pub struct TransformationCatalog {
    map: Rc<RefCell<BTreeMap<String, Transformation>>>,
}

impl TransformationCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a transformation (replaces an existing entry).
    pub fn register(&self, t: Transformation) {
        self.map.borrow_mut().insert(t.name.clone(), t);
    }

    /// Look up by logical name.
    pub fn lookup(&self, name: &str) -> Option<Transformation> {
        self.map.borrow().get(name).cloned()
    }

    /// Number of registered transformations.
    pub fn len(&self) -> usize {
        self.map.borrow().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.borrow().is_empty()
    }
}

/// Where a logical file physically lives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicaLocation {
    /// Staged on the submit node's shared filesystem under this path.
    SharedFs(String),
}

/// The replica catalog: logical file name → physical location.
#[derive(Clone, Default)]
pub struct ReplicaCatalog {
    map: Rc<RefCell<BTreeMap<String, ReplicaLocation>>>,
}

impl ReplicaCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a replica.
    pub fn register(&self, logical: impl Into<String>, location: ReplicaLocation) {
        self.map.borrow_mut().insert(logical.into(), location);
    }

    /// Look up a replica.
    pub fn lookup(&self, logical: &str) -> Option<ReplicaLocation> {
        self.map.borrow().get(logical).cloned()
    }

    /// True when the file is known.
    pub fn contains(&self, logical: &str) -> bool {
        self.map.borrow().contains_key(logical)
    }
}

/// A compute site (the paper has one: the condor pool).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Site {
    /// Site handle, e.g. `condorpool`.
    pub handle: String,
    /// Worker count.
    pub workers: usize,
    /// Cores per worker.
    pub cores_per_worker: usize,
}

/// The site catalog.
#[derive(Clone, Default)]
pub struct SiteCatalog {
    sites: Rc<RefCell<Vec<Site>>>,
}

impl SiteCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a site.
    pub fn register(&self, site: Site) {
        self.sites.borrow_mut().push(site);
    }

    /// Find a site by handle.
    pub fn lookup(&self, handle: &str) -> Option<Site> {
        self.sites
            .borrow()
            .iter()
            .find(|s| s.handle == handle)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::secs;

    #[test]
    fn transformation_catalog_roundtrip() {
        let cat = TransformationCatalog::new();
        assert!(cat.is_empty());
        cat.register(Transformation::new("matmul", secs(0.458), Ok));
        assert_eq!(cat.len(), 1);
        assert!(cat.lookup("matmul").is_some());
        assert!(cat.lookup("ghost").is_none());
    }

    #[test]
    fn replica_catalog_roundtrip() {
        let cat = ReplicaCatalog::new();
        cat.register("seed_a", ReplicaLocation::SharedFs("seed_a".into()));
        assert!(cat.contains("seed_a"));
        assert_eq!(
            cat.lookup("seed_a"),
            Some(ReplicaLocation::SharedFs("seed_a".into()))
        );
        assert!(!cat.contains("other"));
    }

    #[test]
    fn site_catalog_lookup() {
        let cat = SiteCatalog::new();
        cat.register(Site {
            handle: "condorpool".into(),
            workers: 3,
            cores_per_worker: 8,
        });
        assert_eq!(cat.lookup("condorpool").unwrap().workers, 3);
        assert!(cat.lookup("aws").is_none());
    }
}
