//! # swf-pegasus
//!
//! Pegasus-style workflow management system for the *Serverless Computing
//! for Dynamic HPC Workflows* reproduction: abstract workflows whose
//! dependencies derive from producer/consumer file relations, the
//! transformation/replica/site catalogs, and a planner that emits
//! executable HTCondor DAGs — with task clustering and pluggable execution
//! venues so the integration crate can rewrite tasks into containerized or
//! serverless form, exactly the surface the paper modifies.

#![warn(missing_docs)]

pub mod abstract_wf;
pub mod catalog;
#[allow(clippy::module_inception)]
pub mod pegasus;
pub mod planner;

pub use abstract_wf::{AbstractJob, AbstractWorkflow, TaskLogic, Transformation, WorkflowError};
pub use catalog::{ReplicaCatalog, ReplicaLocation, Site, SiteCatalog, TransformationCatalog};
pub use pegasus::{Pegasus, PegasusError, WorkflowRunStats};
pub use planner::{
    plan, run_native, ExecutableWorkflow, JobFactory, NativeFactory, PlanError, PlanOptions,
    PlannedTask,
};
