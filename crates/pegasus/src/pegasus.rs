//! The Pegasus facade: plan, submit to DAGMan, collect statistics.

use swf_condor::{run_dag, run_dag_resumable, Condor, DagReport, DagRun, DagmanConfig, RescueDag};
use swf_simcore::{SimDuration, SimTime};

use crate::abstract_wf::AbstractWorkflow;
use crate::catalog::{ReplicaCatalog, SiteCatalog, TransformationCatalog};
use crate::planner::{plan, JobFactory, PlanError, PlanOptions};

/// Errors from end-to-end workflow runs.
#[derive(Debug)]
pub enum PegasusError {
    /// Planning failed.
    Plan(PlanError),
    /// Execution failed.
    Execution(swf_condor::CondorError),
}

impl std::fmt::Display for PegasusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PegasusError::Plan(e) => write!(f, "planning failed: {e}"),
            PegasusError::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for PegasusError {}

/// Per-run statistics (pegasus-statistics equivalent).
#[derive(Clone, Debug)]
pub struct WorkflowRunStats {
    /// Workflow name.
    pub name: String,
    /// End-to-end makespan.
    pub makespan: SimDuration,
    /// Submission instant.
    pub started: SimTime,
    /// Completion instant.
    pub finished: SimTime,
    /// Planned task count (after clustering).
    pub tasks: usize,
    /// Condor jobs submitted (includes retries).
    pub jobs_submitted: u32,
    /// Mean per-task execution time (queueing excluded).
    pub mean_task_execution: SimDuration,
}

impl WorkflowRunStats {
    fn from_report(name: &str, tasks: usize, report: &DagReport) -> Self {
        let execs: Vec<SimDuration> = report
            .node_results
            .values()
            .map(|r| r.execution_time())
            .collect();
        let mean = if execs.is_empty() {
            SimDuration::ZERO
        } else {
            execs.iter().copied().sum::<SimDuration>() / execs.len() as u64
        };
        WorkflowRunStats {
            name: name.to_string(),
            makespan: report.makespan(),
            started: report.started,
            finished: report.finished,
            tasks,
            jobs_submitted: report.jobs_submitted,
            mean_task_execution: mean,
        }
    }
}

/// The workflow management system instance.
pub struct Pegasus {
    condor: Condor,
    tcat: TransformationCatalog,
    rcat: ReplicaCatalog,
    scat: SiteCatalog,
    plan_options: PlanOptions,
    dagman: DagmanConfig,
}

impl Pegasus {
    /// New WMS over a condor pool.
    pub fn new(condor: Condor) -> Self {
        Pegasus {
            condor,
            tcat: TransformationCatalog::new(),
            rcat: ReplicaCatalog::new(),
            scat: SiteCatalog::new(),
            plan_options: PlanOptions::default(),
            dagman: DagmanConfig::default(),
        }
    }

    /// Set planner options (builder style).
    pub fn with_plan_options(mut self, options: PlanOptions) -> Self {
        self.plan_options = options;
        self
    }

    /// Set DAGMan config (builder style).
    pub fn with_dagman(mut self, config: DagmanConfig) -> Self {
        self.dagman = config;
        self
    }

    /// The transformation catalog.
    pub fn transformations(&self) -> &TransformationCatalog {
        &self.tcat
    }

    /// The replica catalog.
    pub fn replicas(&self) -> &ReplicaCatalog {
        &self.rcat
    }

    /// The site catalog.
    pub fn sites(&self) -> &SiteCatalog {
        &self.scat
    }

    /// The condor pool.
    pub fn condor(&self) -> &Condor {
        &self.condor
    }

    /// Plan and execute an abstract workflow to completion.
    pub async fn run(
        &self,
        wf: &AbstractWorkflow,
        factory: &dyn JobFactory,
    ) -> Result<(WorkflowRunStats, DagReport), PegasusError> {
        let exec = plan(wf, &self.tcat, &self.rcat, factory, self.plan_options)
            .map_err(PegasusError::Plan)?;
        let task_count = exec.tasks.len();
        let report = run_dag(&self.condor, &exec.dag, self.dagman)
            .await
            .map_err(PegasusError::Execution)?;
        Ok((
            WorkflowRunStats::from_report(&wf.name, task_count, &report),
            report,
        ))
    }

    /// Plan and execute an abstract workflow with rescue-DAG semantics:
    /// under [`swf_condor::FailurePolicy::ContinueOthers`] a failed node
    /// halts only its descendants and the run returns
    /// [`DagRun::Halted`] with the rescue artifact. Passing a previous
    /// halt's rescue as `resume` salvages its completed nodes verbatim —
    /// they are provably never resubmitted. The plan must be identical
    /// between the halted and resumed runs (same workflow, same options);
    /// a mismatch is rejected by the rescue compatibility check.
    pub async fn run_resumable(
        &self,
        wf: &AbstractWorkflow,
        factory: &dyn JobFactory,
        resume: Option<&RescueDag>,
    ) -> Result<(WorkflowRunStats, DagRun), PegasusError> {
        let exec = plan(wf, &self.tcat, &self.rcat, factory, self.plan_options)
            .map_err(PegasusError::Plan)?;
        let task_count = exec.tasks.len();
        let run = run_dag_resumable(&self.condor, &exec.dag, self.dagman, resume)
            .await
            .map_err(PegasusError::Execution)?;
        Ok((
            WorkflowRunStats::from_report(&wf.name, task_count, run.report()),
            run,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstract_wf::{AbstractJob, Transformation};
    use crate::catalog::ReplicaLocation;
    use crate::planner::NativeFactory;
    use bytes::Bytes;
    use swf_cluster::{Cluster, ClusterConfig};
    use swf_condor::{CondorConfig, NegotiatorConfig, StartdConfig};
    use swf_simcore::{secs, Sim, SimDuration};
    use swf_workloads::{decode, encode, matmul, ExecEnv, Kernel, Matrix};

    fn fast_condor(cluster: &Cluster) -> Condor {
        Condor::start(
            cluster,
            CondorConfig {
                negotiator: NegotiatorConfig {
                    cycle_interval: secs(1.0),
                    match_latency: SimDuration::ZERO,
                    ..NegotiatorConfig::default()
                },
                startd: StartdConfig {
                    job_start_overhead: SimDuration::from_millis(100),
                },
            },
        )
    }

    #[test]
    fn end_to_end_matmul_chain_native() {
        let sim = Sim::new();
        sim.block_on(async {
            let cluster = Cluster::new(&ClusterConfig::default());
            let condor = fast_condor(&cluster);
            let pegasus = Pegasus::new(condor).with_dagman(DagmanConfig {
                poll_interval: secs(1.0),
                max_jobs: 0,
                ..DagmanConfig::default()
            });
            pegasus.transformations().register(Transformation::new(
                "matmul",
                secs(0.458),
                |inputs| {
                    let product = swf_workloads::multiply_encoded(
                        inputs[0].clone(),
                        inputs[1].clone(),
                        Kernel::Blocked,
                    )?;
                    Ok(vec![product])
                },
            ));

            // Stage seed matrices on the shared fs (8×8 for test speed).
            let mut rng = swf_simcore::DetRng::new(1, "seeds");
            let a0 = Matrix::random(8, 8, &mut rng, -10, 10);
            cluster.shared_fs().stage("seed_a", encode(&a0));
            pegasus
                .replicas()
                .register("seed_a", ReplicaLocation::SharedFs("seed_a".into()));
            let mut expected = a0.clone();
            let mut wf = AbstractWorkflow::new("chain");
            for t in 0..3 {
                let b = Matrix::random(8, 8, &mut rng, -10, 10);
                expected = matmul(&expected, &b, Kernel::Blocked);
                let side = format!("side{t}");
                cluster.shared_fs().stage(&side, encode(&b));
                pegasus
                    .replicas()
                    .register(&side, ReplicaLocation::SharedFs(side.clone()));
                let input_a = if t == 0 {
                    "seed_a".to_string()
                } else {
                    format!("out{}", t - 1)
                };
                wf.add_job(AbstractJob {
                    name: format!("t{t}"),
                    transformation: "matmul".into(),
                    inputs: vec![input_a, side],
                    outputs: vec![format!("out{t}")],
                    env: ExecEnv::Native,
                });
            }

            let (stats, report) = pegasus.run(&wf, &NativeFactory).await.unwrap();
            assert_eq!(stats.tasks, 3);
            assert_eq!(report.node_results.len(), 3);
            assert!(stats.makespan > SimDuration::ZERO);
            assert!(stats.mean_task_execution >= secs(0.458));
            // The final product staged back to the shared fs is correct.
            let out = cluster.shared_fs().read("out2").await.unwrap();
            assert_eq!(decode(out).unwrap(), expected);
        });
    }

    #[test]
    fn failing_transformation_surfaces_as_execution_error() {
        let sim = Sim::new();
        sim.block_on(async {
            let cluster = Cluster::new(&ClusterConfig::default());
            let pegasus = Pegasus::new(fast_condor(&cluster)).with_dagman(DagmanConfig {
                poll_interval: secs(1.0),
                max_jobs: 0,
                ..DagmanConfig::default()
            });
            pegasus
                .transformations()
                .register(Transformation::new("explode", secs(0.1), |_| {
                    Err("kaboom".to_string())
                }));
            cluster.shared_fs().stage("seed", Bytes::from_static(b"x"));
            pegasus
                .replicas()
                .register("seed", ReplicaLocation::SharedFs("seed".into()));
            let mut wf = AbstractWorkflow::new("boom");
            wf.add_job(AbstractJob {
                name: "only".into(),
                transformation: "explode".into(),
                inputs: vec!["seed".into()],
                outputs: vec!["never".into()],
                env: ExecEnv::Native,
            });
            let err = pegasus.run(&wf, &NativeFactory).await.unwrap_err();
            assert!(matches!(err, PegasusError::Execution(_)));
            assert!(err.to_string().contains("kaboom"));
        });
    }
}
