//! Golden tests for the `obsq` binary over a checked-in trace fixture.
//!
//! `tests/fixtures/spans.json` is a hand-authored `swf-spans/v1`
//! document mirroring the paper's story: an ablation group whose
//! claim-activation span covers 74 s of a 79.8 s makespan, and a
//! serverless group with a cold-start chain. Each golden file is the
//! byte-exact output of one query — query output is part of the
//! determinism surface, so any change here is a deliberate,
//! bless-the-golden change, never drift.

use std::path::Path;
use std::process::Command;

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// Run `obsq` with `args` against the fixture; return stdout.
fn obsq(args: &[&str]) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_obsq"));
    cmd.arg(args[0]).arg(fixture("spans.json")).args(&args[1..]);
    let out = cmd.output().expect("spawn obsq");
    assert!(
        out.status.success(),
        "obsq {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(fixture(name)).expect("read golden")
}

#[test]
fn summary_matches_golden() {
    let out = obsq(&["summary"]);
    assert_eq!(out, golden("golden_summary.txt"));
    // The headline the fixture was built for: claim-activation is the
    // top offender by self time, not the enclosing workflow root.
    assert!(
        out.contains("top offender: claim-activation — 74.0s self time across 1 spans"),
        "{out}"
    );
}

#[test]
fn spans_matches_golden() {
    assert_eq!(obsq(&["spans", "--top", "3"]), golden("golden_spans.txt"));
}

#[test]
fn group_by_matches_golden() {
    assert_eq!(
        obsq(&["group-by", "--group", "category"]),
        golden("golden_groupby.json")
    );
}

#[test]
fn folded_matches_golden() {
    let out = obsq(&["folded"]);
    assert_eq!(out, golden("golden_folded.txt"));
    // Folded lines carry self time: the 79.8s root folds down to its
    // 1.0s of uncovered time (in µs).
    assert!(out.contains("ablation;workflow:wf-0 1000000\n"), "{out}");
}

#[test]
fn filters_and_errors_behave() {
    // --label restricts to one group.
    let out = obsq(&["summary", "--label", "serverless"]);
    assert!(out.starts_with("serverless: 5 spans"), "{out}");
    assert!(!out.contains("ablation"), "{out}");

    // --category + --min-s compose.
    let out = obsq(&["spans", "--category", "compute", "--min-s", "5.0"]);
    assert!(out.contains("exec:reduce"), "{out}");
    assert!(!out.contains("exec:matmul"), "{out}");

    // Unknown label / bad category fail loudly.
    for bad in [
        &["summary", "--label", "nope"][..],
        &["spans", "--category", "nope"][..],
    ] {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_obsq"));
        cmd.arg(bad[0]).arg(fixture("spans.json")).args(&bad[1..]);
        let out = cmd.output().expect("spawn obsq");
        assert!(!out.status.success(), "obsq {bad:?} should fail");
    }
}
