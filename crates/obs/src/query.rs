//! Trace query engine: filter, rank, group, and fold a finished span
//! tree. This is the library behind the `obsq` binary, but it is a
//! plain-function API usable from tests and examples too
//! (`examples/trace_explorer.rs` drives it against a live run).
//!
//! Everything here is deterministic: filters preserve recording order,
//! rankings break duration ties by span id, group rows come out in
//! `BTreeMap` key order, and group percentiles come from the same
//! [`LogHistogram`](crate::LogHistogram) buckets the metrics registry
//! uses — so query output over the same trace is byte-identical across
//! runs and platforms.

use std::collections::BTreeMap;

use crate::hist::LogHistogram;
use crate::span::{Category, Span};

/// A span predicate: all set fields must match.
#[derive(Clone, Debug, Default)]
pub struct SpanFilter {
    /// Substring match against `component` (e.g. `"negotiator"`).
    pub component: Option<String>,
    /// Exact category match.
    pub category: Option<Category>,
    /// Keep only spans at least this long (virtual seconds).
    pub min_duration_s: Option<f64>,
}

impl SpanFilter {
    /// The match-everything filter.
    pub fn all() -> SpanFilter {
        SpanFilter::default()
    }

    /// Restrict to components containing `needle`.
    pub fn component(mut self, needle: &str) -> SpanFilter {
        self.component = Some(needle.to_string());
        self
    }

    /// Restrict to one category.
    pub fn category(mut self, category: Category) -> SpanFilter {
        self.category = Some(category);
        self
    }

    /// Restrict to spans of at least `min_s` virtual seconds.
    pub fn min_duration(mut self, min_s: f64) -> SpanFilter {
        self.min_duration_s = Some(min_s);
        self
    }

    /// Does `span` pass?
    pub fn matches(&self, span: &Span) -> bool {
        if let Some(needle) = &self.component {
            if !span.component.contains(needle.as_str()) {
                return false;
            }
        }
        if let Some(category) = self.category {
            if span.category != category {
                return false;
            }
        }
        if let Some(min) = self.min_duration_s {
            if span.duration_secs() < min {
                return false;
            }
        }
        true
    }

    /// All matching spans, in recording order.
    pub fn apply<'a>(&self, spans: &'a [Span]) -> Vec<&'a Span> {
        spans.iter().filter(|s| self.matches(s)).collect()
    }
}

/// The `n` slowest matching spans, longest first (ties broken by span
/// id, so the ranking is stable).
pub fn top_slowest<'a>(spans: &'a [Span], filter: &SpanFilter, n: usize) -> Vec<&'a Span> {
    let mut matched = filter.apply(spans);
    matched.sort_by(|a, b| {
        b.duration_secs()
            .total_cmp(&a.duration_secs())
            .then(a.id.cmp(&b.id))
    });
    matched.truncate(n);
    matched
}

/// What to group spans by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupKey {
    /// Group by the full `process/thread` component path.
    Component,
    /// Group by time category.
    Category,
    /// Group by operation name.
    Name,
}

impl GroupKey {
    /// Parse a CLI argument (`component` / `category` / `name`).
    pub fn parse(s: &str) -> Option<GroupKey> {
        match s {
            "component" => Some(GroupKey::Component),
            "category" => Some(GroupKey::Category),
            "name" => Some(GroupKey::Name),
            _ => None,
        }
    }

    fn of(self, span: &Span) -> String {
        match self {
            GroupKey::Component => span.component.clone(),
            GroupKey::Category => span.category.label().to_string(),
            GroupKey::Name => span.name.clone(),
        }
    }
}

/// One aggregation row: duration statistics over a span group.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupRow {
    /// The group's key value.
    pub key: String,
    /// Spans in the group.
    pub count: u64,
    /// Total virtual seconds across the group.
    pub total_s: f64,
    /// Median span duration (log-bucket bound).
    pub p50: f64,
    /// 90th-percentile span duration.
    pub p90: f64,
    /// 99th-percentile span duration.
    pub p99: f64,
    /// Longest span duration (exact).
    pub max_s: f64,
}

/// Group matching spans by `key` and aggregate duration distributions.
/// Rows come back sorted by descending `total_s` (key order on ties) —
/// the "where did the time go" view.
pub fn group_by(spans: &[Span], filter: &SpanFilter, key: GroupKey) -> Vec<GroupRow> {
    let mut groups: BTreeMap<String, LogHistogram> = BTreeMap::new();
    for span in filter.apply(spans) {
        groups
            .entry(key.of(span))
            .or_default()
            .record(span.duration_secs());
    }
    let mut rows: Vec<GroupRow> = groups
        .into_iter()
        .map(|(key, h)| GroupRow {
            key,
            count: h.count,
            total_s: h.sum,
            p50: h.percentile(0.50),
            p90: h.percentile(0.90),
            p99: h.percentile(0.99),
            max_s: h.max,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.total_s
            .total_cmp(&a.total_s)
            .then_with(|| a.key.cmp(&b.key))
    });
    rows
}

/// Render group rows as JSON (the `obsq group-by` output).
pub fn group_rows_json(rows: &[GroupRow]) -> serde_json::Value {
    serde_json::Value::Array(
        rows.iter()
            .map(|r| {
                let mut obj = serde_json::Map::new();
                obj.insert("key".to_string(), serde_json::Value::from(r.key.clone()));
                obj.insert("count".to_string(), serde_json::Value::from(r.count));
                obj.insert("total_s".to_string(), serde_json::Value::from(r.total_s));
                obj.insert("p50".to_string(), serde_json::Value::from(r.p50));
                obj.insert("p90".to_string(), serde_json::Value::from(r.p90));
                obj.insert("p99".to_string(), serde_json::Value::from(r.p99));
                obj.insert("max_s".to_string(), serde_json::Value::from(r.max_s));
                serde_json::Value::Object(obj)
            })
            .collect(),
    )
}

/// Fold a span tree into flamegraph-compatible stack lines:
/// `root;child;grandchild <self-time-µs>`, one line per span with
/// positive self time (duration minus children, clamped at zero),
/// lexicographically sorted. Feed the output straight to
/// `flamegraph.pl` or any folded-stack viewer.
pub fn folded_stacks(spans: &[Span]) -> Vec<String> {
    let index: BTreeMap<_, _> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_time: BTreeMap<crate::span::SpanId, f64> = BTreeMap::new();
    for span in spans {
        if !span.parent.is_none() {
            *child_time.entry(span.parent).or_insert(0.0) += span.duration_secs();
        }
    }
    let mut lines = Vec::new();
    for span in spans {
        let self_s =
            (span.duration_secs() - child_time.get(&span.id).copied().unwrap_or(0.0)).max(0.0);
        let self_us = (self_s * 1e6).round() as u64;
        if self_us == 0 {
            continue;
        }
        // Walk up to the root to build the stack (frames are `name`;
        // cycles are impossible because parents precede children).
        let mut frames = vec![span.name.as_str()];
        let mut at = span.parent;
        while let Some(parent) = index.get(&at) {
            frames.push(parent.name.as_str());
            at = parent.parent;
        }
        frames.reverse();
        lines.push(format!("{} {}", frames.join(";"), self_us));
    }
    lines.sort_unstable();
    lines
}

/// One-line "top offender" summary: the category with the largest
/// *self time* (duration minus children, so enclosing workflow roots
/// don't drown out the overheads nested inside them), excluding
/// structural `other` spans. This is what surfaces claim-activation as
/// the dominant cost (≈74 s of the 79.8 s ablation makespan). Returns
/// `None` on an empty trace.
pub fn top_offender(spans: &[Span]) -> Option<String> {
    let mut child_time: BTreeMap<crate::span::SpanId, f64> = BTreeMap::new();
    for span in spans {
        if !span.parent.is_none() {
            *child_time.entry(span.parent).or_insert(0.0) += span.duration_secs();
        }
    }
    let mut by_category: BTreeMap<&'static str, (u64, f64)> = BTreeMap::new();
    for span in spans {
        let self_s =
            (span.duration_secs() - child_time.get(&span.id).copied().unwrap_or(0.0)).max(0.0);
        let entry = by_category.entry(span.category.label()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += self_s;
    }
    let (label, (count, total_s)) = by_category
        .into_iter()
        .filter(|(label, _)| *label != "other")
        .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1).then_with(|| b.0.cmp(a.0)))?;
    Some(format!(
        "top offender: {label} — {total_s:.1}s self time across {count} spans"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanContext, SpanId};
    use crate::Obs;
    use swf_simcore::{secs, sleep, Sim};

    fn fixture() -> Vec<Span> {
        let obs = Obs::enabled();
        let sim = Sim::new();
        let h = obs.clone();
        sim.block_on(async move {
            let wf = h.span(
                SpanContext::NONE,
                "condor/dagman",
                "workflow:a",
                Category::Queue,
            );
            let act = h.start_span(wf.ctx(), "condor/startd", "activate", Category::Activation);
            sleep(secs(10.0)).await;
            h.end(act);
            let run = h.start_span(wf.ctx(), "node-0/startd", "run", Category::Compute);
            sleep(secs(4.0)).await;
            h.end(run);
            let cold = h.start_span(wf.ctx(), "knative/activator", "cold", Category::ColdStart);
            sleep(secs(2.0)).await;
            h.end(cold);
        });
        obs.spans()
    }

    #[test]
    fn filters_compose() {
        let spans = fixture();
        assert_eq!(SpanFilter::all().apply(&spans).len(), 4);
        assert_eq!(SpanFilter::all().component("condor").apply(&spans).len(), 2);
        assert_eq!(
            SpanFilter::all()
                .category(Category::Activation)
                .apply(&spans)
                .len(),
            1
        );
        assert_eq!(SpanFilter::all().min_duration(3.5).apply(&spans).len(), 3);
        assert_eq!(
            SpanFilter::all()
                .component("condor")
                .min_duration(5.0)
                .apply(&spans)
                .len(),
            2 // workflow root (16s) + activate (10s)
        );
    }

    #[test]
    fn top_slowest_ranks_with_stable_ties() {
        let spans = fixture();
        let top = top_slowest(&spans, &SpanFilter::all(), 2);
        assert_eq!(top[0].name, "workflow:a");
        assert_eq!(top[1].name, "activate");
        // Tie stability: two zero-length spans rank by id.
        let a = Span {
            id: SpanId(1),
            parent: SpanId::NONE,
            component: "x/y".into(),
            name: "a".into(),
            category: Category::Other,
            start: swf_simcore::SimTime::ZERO,
            end: Some(swf_simcore::SimTime::ZERO),
            links: vec![],
        };
        let mut b = a.clone();
        b.id = SpanId(2);
        b.name = "b".into();
        let pair = [b.clone(), a.clone()];
        let ranked = top_slowest(&pair, &SpanFilter::all(), 2);
        assert_eq!(ranked[0].name, "a");
    }

    #[test]
    fn group_by_category_accounts_all_time() {
        let spans = fixture();
        let rows = group_by(&spans, &SpanFilter::all(), GroupKey::Category);
        assert_eq!(rows[0].key, "queue"); // the 16s workflow root
        let activation = rows.iter().find(|r| r.key == "claim-activation").unwrap();
        assert_eq!(activation.count, 1);
        assert!((activation.total_s - 10.0).abs() < 1e-9);
        assert_eq!(activation.max_s, activation.total_s);
        // p50 of a single span is its exact duration (clamped to max).
        assert!((activation.p50 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn folded_stacks_fold_self_time() {
        let spans = fixture();
        let lines = folded_stacks(&spans);
        // activate: 10s self under the workflow root.
        assert!(lines.iter().any(|l| l == "workflow:a;activate 10000000"));
        // root self time = 16 − (10 + 4 + 2) = 0 → no line for the root.
        assert!(!lines.iter().any(|l| l == "workflow:a 0"));
        assert_eq!(lines.len(), 3);
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn top_offender_names_the_dominant_category_by_self_time() {
        let spans = fixture();
        // The 16s workflow root has zero self time (fully covered by
        // children), so the 10s activation wins, not "queue".
        let line = top_offender(&spans).unwrap();
        assert!(line.starts_with("top offender: claim-activation"), "{line}");
        assert!(top_offender(&[]).is_none());
    }
}
