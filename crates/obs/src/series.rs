//! Virtual-time telemetry series: a snapshot scheduler samples the
//! metrics registry at a fixed virtual interval into per-metric
//! ring-buffered series, so a run produces *trajectories* (queue depth,
//! in-flight invocations, outage windows over time) instead of only
//! end-of-run totals.
//!
//! The sampler is a plain simulation task ([`spawn_sampler`]) driven by
//! `swf_simcore`'s virtual timers: it sleeps the configured interval,
//! samples, and repeats. Because it only *reads* the registry and never
//! mutates simulated state, it cannot perturb virtual-time results; when
//! the driving future of `Sim::block_on` completes, the sampler's pending
//! timer is simply abandoned without advancing the clock. A hard
//! `max_samples` cap guarantees termination even under `run_until_idle`.

use std::collections::{BTreeMap, VecDeque};

use swf_simcore::SimDuration;

/// Configuration of the snapshot scheduler.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesConfig {
    /// Virtual time between samples.
    pub interval: SimDuration,
    /// Ring capacity per series: when full, the oldest point is dropped
    /// (and counted), bounding memory for arbitrarily long runs.
    pub capacity: usize,
    /// Hard cap on total sampler ticks per collector — the sampler task
    /// exits once reached, guaranteeing termination under
    /// `run_until_idle`-style drivers.
    pub max_samples: u64,
    /// Metric names to sample; empty = every registered metric.
    pub tracked: Vec<String>,
}

impl SeriesConfig {
    /// Sample every registered metric at `interval` with the default
    /// ring capacity (128 points) and tick cap (4096).
    pub fn every(interval: SimDuration) -> SeriesConfig {
        SeriesConfig {
            interval,
            capacity: 128,
            max_samples: 4096,
            tracked: Vec::new(),
        }
    }

    /// Restrict sampling to a named metric (repeatable). Names given here
    /// are checked against `metrics.registry` by swf-tidy's M-rules.
    pub fn track(mut self, name: &str) -> SeriesConfig {
        self.tracked.push(name.to_string());
        self
    }

    fn wants(&self, name: &str) -> bool {
        self.tracked.is_empty() || self.tracked.iter().any(|t| t == name)
    }
}

/// One ring-buffered series of `(virtual nanoseconds, value)` points.
#[derive(Clone, Debug, Default)]
pub(crate) struct RingSeries {
    points: VecDeque<(u64, f64)>,
    dropped: u64,
}

impl RingSeries {
    fn push(&mut self, capacity: usize, t_ns: u64, v: f64) {
        if capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.points.len() == capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
        self.points.push_back((t_ns, v));
    }
}

/// The collector-side series store: configuration plus every sampled
/// series, keyed by metric name (histograms contribute `<name>.count`
/// and `<name>.p99` sub-series).
#[derive(Default)]
pub(crate) struct SeriesStore {
    pub(crate) config: Option<SeriesConfig>,
    series: BTreeMap<String, RingSeries>,
    samples: u64,
}

impl SeriesStore {
    /// Take one sample of the registry at `t_ns`. Returns `false` once
    /// the tick cap is reached (the sampler task uses this to exit).
    pub(crate) fn sample(&mut self, metrics: &crate::metrics::Metrics, t_ns: u64) -> bool {
        let Some(config) = self.config.clone() else {
            return false;
        };
        if self.samples >= config.max_samples {
            return false;
        }
        self.samples += 1;
        for (name, v) in metrics.counters() {
            if config.wants(name) {
                self.series
                    .entry(name.clone())
                    .or_default()
                    .push(config.capacity, t_ns, v as f64);
            }
        }
        for (name, v) in metrics.gauges() {
            if config.wants(name) {
                self.series
                    .entry(name.clone())
                    .or_default()
                    .push(config.capacity, t_ns, v);
            }
        }
        for (name, h) in metrics.histograms() {
            if config.wants(name) {
                self.series
                    .entry(format!("{name}.count"))
                    .or_default()
                    .push(config.capacity, t_ns, h.count as f64);
                self.series.entry(format!("{name}.p99")).or_default().push(
                    config.capacity,
                    t_ns,
                    h.percentile(0.99),
                );
            }
        }
        true
    }

    /// True once at least one sample was taken.
    pub(crate) fn has_samples(&self) -> bool {
        self.samples > 0
    }

    /// Render as JSON:
    /// `{"interval_s", "samples", "series": {name: {"dropped", "points": [[t_ns, v], ..]}}}`.
    pub(crate) fn to_json(&self) -> serde_json::Value {
        let mut series = serde_json::Map::new();
        for (name, ring) in &self.series {
            let points: Vec<serde_json::Value> = ring
                .points
                .iter()
                .map(|&(t, v)| {
                    serde_json::Value::Array(vec![
                        serde_json::Value::from(t),
                        serde_json::Value::from(v),
                    ])
                })
                .collect();
            let mut obj = serde_json::Map::new();
            obj.insert("dropped".to_string(), serde_json::Value::from(ring.dropped));
            obj.insert("points".to_string(), serde_json::Value::Array(points));
            series.insert(name.clone(), serde_json::Value::Object(obj));
        }
        let mut root = serde_json::Map::new();
        root.insert(
            "interval_s".to_string(),
            serde_json::Value::from(
                self.config
                    .as_ref()
                    .map_or(0.0, |c| c.interval.as_secs_f64()),
            ),
        );
        root.insert("samples".to_string(), serde_json::Value::from(self.samples));
        root.insert("series".to_string(), serde_json::Value::Object(series));
        serde_json::Value::Object(root)
    }
}

/// Spawn the snapshot scheduler on the current simulation: a task that
/// samples the collector at its configured interval until the collector
/// is dropped, the tick cap is reached, or the simulation ends. A no-op
/// for disabled collectors or collectors without a series configuration,
/// so calm paths stay bit-identical.
///
/// Must be called inside a running simulation (like any `spawn`).
pub fn spawn_sampler(obs: &crate::Obs) {
    let Some(interval) = obs.series_interval() else {
        return;
    };
    if interval.is_zero() {
        return;
    }
    let obs = obs.clone();
    swf_simcore::spawn(async move {
        let mut ticker = swf_simcore::interval(interval);
        loop {
            ticker.tick().await;
            if !obs.sample_now() {
                break;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;
    use swf_simcore::{secs, sleep, Sim};

    #[test]
    fn sampler_records_trajectories_on_the_virtual_clock() {
        let obs = Obs::enabled();
        obs.configure_series(SeriesConfig::every(secs(1.0)));
        let sim = Sim::new();
        let h = obs.clone();
        sim.block_on(async move {
            spawn_sampler(&h);
            for i in 0..5u64 {
                h.counter_add("test.ticks", 1);
                h.gauge_set("test.depth", i as f64);
                sleep(secs(1.0)).await;
            }
        });
        let json = obs.series_json();
        let points = json["series"]["test.ticks"]["points"]
            .as_array()
            .expect("counter series");
        assert!(points.len() >= 4, "got {} points", points.len());
        // Monotone virtual timestamps, one interval apart.
        let t0 = points[0][0].as_u64().unwrap();
        let t1 = points[1][0].as_u64().unwrap();
        assert_eq!(t1 - t0, 1_000_000_000);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let mut ring = RingSeries::default();
        for i in 0..10u64 {
            ring.push(4, i, i as f64);
        }
        assert_eq!(ring.dropped, 6);
        assert_eq!(ring.points.len(), 4);
        assert_eq!(ring.points.front().copied(), Some((6, 6.0)));
        assert_eq!(ring.points.back().copied(), Some((9, 9.0)));
    }

    #[test]
    fn tick_cap_terminates_the_sampler() {
        let obs = Obs::enabled();
        let mut cfg = SeriesConfig::every(secs(1.0));
        cfg.max_samples = 3;
        obs.configure_series(cfg);
        let sim = Sim::new();
        let h = obs.clone();
        sim.block_on(async move {
            h.counter_add("test.x", 1);
            spawn_sampler(&h);
        });
        // The driving future finished immediately, but the sampler's
        // pending timers remain; run_until_idle must terminate because of
        // the cap (3 ticks + the final refused one).
        sim.run_until_idle();
        let json = obs.series_json();
        assert_eq!(json["samples"].as_u64(), Some(3));
    }

    #[test]
    fn tracked_filter_restricts_series() {
        let obs = Obs::enabled();
        obs.configure_series(SeriesConfig::every(secs(1.0)).track("test.kept"));
        let sim = Sim::new();
        let h = obs.clone();
        sim.block_on(async move {
            spawn_sampler(&h);
            h.counter_add("test.kept", 1);
            h.counter_add("test.ignored", 1);
            sleep(secs(2.5)).await;
        });
        let json = obs.series_json();
        assert!(json["series"]["test.kept"]["points"].is_array());
        assert!(json["series"]["test.ignored"].is_null());
    }

    #[test]
    fn disabled_or_unconfigured_sampler_is_inert() {
        let obs = Obs::enabled(); // no series config
        let sim = Sim::new();
        let h = obs.clone();
        sim.block_on(async move {
            spawn_sampler(&h);
            sleep(secs(5.0)).await;
        });
        assert!(!obs.has_series());
        assert!(obs.series_json()["series"]
            .as_object()
            .is_some_and(|s| s.is_empty()));
    }
}
