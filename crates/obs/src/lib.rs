//! `swf-obs` — observability for the simulated serverless HPC stack.
//!
//! The paper's results (Figs. 1/2/5/6) are *overhead decompositions*:
//! how much of a workflow's makespan is queueing vs. claim activation
//! vs. image pulls vs. cold starts vs. payload serialization vs. real
//! compute. This crate turns the simulation from "the number matches"
//! into "the number matches for the right reason":
//!
//! - **Hierarchical spans** over virtual time ([`Span`], [`SpanContext`]),
//!   with parent links and cross-component causal links, carried through
//!   HTTP headers, condor job ads, and k8s pod anchors.
//! - A **critical-path analyzer** ([`critical_path`]) returning the
//!   longest causal chain through a finished span tree and a
//!   per-category time breakdown of the makespan.
//! - A **metrics registry** (counters, gauges, virtual-time histograms
//!   backed by bounded-memory log buckets, [`LogHistogram`]) dumped as
//!   JSON with deterministic p50/p90/p95/p99/p999.
//! - A **snapshot scheduler** ([`spawn_sampler`], [`SeriesConfig`])
//!   sampling the registry at a virtual interval into ring-buffered
//!   time series, so runs produce trajectories, not just totals.
//! - A **deterministic SLO engine** ([`SloSpec`], [`SloReport`],
//!   [`evaluate_slo`]): latency objectives, cold-start rate,
//!   per-workflow makespans, error-budget burn.
//! - A **trace query engine** ([`SpanFilter`], [`group_by`],
//!   [`top_slowest`], [`folded_stacks`]) plus the lossless
//!   `swf-spans/v1` interchange format ([`spans_to_json`]) — the
//!   library behind the `obsq` binary.
//! - **Chrome-trace / Perfetto export** ([`chrome_trace`]): one trace
//!   "process" per simulated node, one "thread" per component.
//!
//! Instrumentation is *zero-cost when disabled*: the default ambient
//! collector is [`Obs::disabled`], and every recording method is a
//! single `Option` branch away from a no-op, so a run with tracing off
//! is bit-identical to an uninstrumented build. Tracing itself never
//! advances virtual time, so even an *enabled* run keeps identical
//! timings — the spans are a pure annotation layer.

#![warn(missing_docs)]

mod chrome;
mod collector;
mod critpath;
mod export;
mod hist;
mod metrics;
mod query;
mod series;
mod slo;
mod span;

pub use chrome::{chrome_trace, chrome_trace_to_string};
pub use collector::{current, install, InstallGuard, Obs, ObsTraceSink, SpanGuard};
pub use critpath::{critical_path, roots, CritStep, CriticalPath};
pub use export::{spans_from_json, spans_to_json, SPANS_FORMAT};
pub use hist::LogHistogram;
pub use metrics::{HistogramSummary, MetricsSnapshot};
pub use query::{
    folded_stacks, group_by, group_rows_json, top_offender, top_slowest, GroupKey, GroupRow,
    SpanFilter,
};
pub use series::{spawn_sampler, SeriesConfig};
pub use slo::{
    evaluate as evaluate_slo, LatencyObjective, ObjectiveOutcome, Pctl, SloReport, SloSpec,
    WorkflowOutcome,
};
pub use span::{Category, Span, SpanContext, SpanId, TRACE_HEADER};
