//! Span types: identities, contexts, categories and the span record.

use swf_simcore::SimTime;

/// Identity of one span inside a run's collector (1-based; 0 = none).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null id.
    pub const NONE: SpanId = SpanId(0);

    /// True for the null id.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

/// A propagatable reference to a span — small enough to copy through
/// job ads, HTTP headers and async task boundaries.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SpanContext {
    /// The referenced span (NONE when tracing is disabled).
    pub id: SpanId,
}

impl SpanContext {
    /// The empty context (what disabled tracing propagates).
    pub const NONE: SpanContext = SpanContext { id: SpanId::NONE };

    /// True when there is no referenced span.
    pub fn is_none(&self) -> bool {
        self.id.is_none()
    }

    /// Encode for an HTTP header (W3C-traceparent-like, but local).
    pub fn to_header(self) -> String {
        format!("swf-{:016x}", self.id.0)
    }

    /// Decode a header produced by [`SpanContext::to_header`].
    pub fn from_header(value: &str) -> SpanContext {
        value
            .strip_prefix("swf-")
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .map(|id| SpanContext { id: SpanId(id) })
            .unwrap_or(SpanContext::NONE)
    }
}

/// The header key used to carry a [`SpanContext`] over the simulated
/// HTTP fabric.
pub const TRACE_HEADER: &str = "swf-traceparent";

/// What kind of time a span accounts for — the paper's overhead taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Category {
    /// Waiting in a scheduler queue (schedd idle, DAGMan polling).
    Queue,
    /// Matchmaking work in the negotiator.
    Negotiate,
    /// Claim activation: matched but waiting for the startd to begin.
    Activation,
    /// File/data movement (sandbox stage-in/out, payload transfer).
    Transfer,
    /// Container image pulls / docker load.
    Pull,
    /// Cold start: waiting for a pod/endpoint to become ready.
    ColdStart,
    /// Container create/start overhead.
    Create,
    /// Container stop/remove overhead.
    Destroy,
    /// Payload (de)serialization for pass-by-value invocation.
    Serialize,
    /// Real kernel compute.
    Compute,
    /// Runtime DAG expansion: a dynamic-workflow trigger reading completed
    /// outputs and deciding successor jobs (swf-apps).
    Expand,
    /// Anything else (structural/bookkeeping spans).
    Other,
}

impl Category {
    /// Every category, in display order.
    pub const ALL: [Category; 12] = [
        Category::Queue,
        Category::Negotiate,
        Category::Activation,
        Category::Transfer,
        Category::Pull,
        Category::ColdStart,
        Category::Create,
        Category::Destroy,
        Category::Serialize,
        Category::Compute,
        Category::Expand,
        Category::Other,
    ];

    /// Parse a label produced by [`Category::label`] (trace import).
    pub fn from_label(label: &str) -> Option<Category> {
        Category::ALL.into_iter().find(|c| c.label() == label)
    }

    /// Stable lowercase label (used in tables and trace exports).
    pub fn label(&self) -> &'static str {
        match self {
            Category::Queue => "queue",
            Category::Negotiate => "negotiate",
            Category::Activation => "claim-activation",
            Category::Transfer => "transfer",
            Category::Pull => "pull",
            Category::ColdStart => "cold-start",
            Category::Create => "create",
            Category::Destroy => "destroy",
            Category::Serialize => "serialize",
            Category::Compute => "compute",
            Category::Expand => "expand",
            Category::Other => "other",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded span: a named interval of virtual time attributed to a
/// component, with a parent and optional causal links.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// This span's id (its 1-based index in the collector).
    pub id: SpanId,
    /// Enclosing span (NONE for roots).
    pub parent: SpanId,
    /// `process/thread` location, e.g. `node-2/kubelet` or
    /// `condor/negotiator`.
    pub component: String,
    /// Human-readable operation name.
    pub name: String,
    /// Time category for breakdown attribution.
    pub category: Category,
    /// Begin (virtual time).
    pub start: SimTime,
    /// End (virtual time); `None` while open.
    pub end: Option<SimTime>,
    /// Upstream spans that causally feed this one from *other* subtrees
    /// (e.g. the pod-start span an activator wait depended on).
    pub links: Vec<SpanId>,
}

impl Span {
    /// End time, treating still-open spans as zero-length.
    pub fn end_or_start(&self) -> SimTime {
        self.end.unwrap_or(self.start)
    }

    /// Duration in seconds (zero while open).
    pub fn duration_secs(&self) -> f64 {
        (self.end_or_start() - self.start).as_secs_f64()
    }

    /// The `process` half of the component path.
    pub fn process(&self) -> &str {
        self.component.split('/').next().unwrap_or(&self.component)
    }

    /// The `thread` half of the component path (process itself if flat).
    pub fn thread(&self) -> &str {
        match self.component.split_once('/') {
            Some((_, t)) => t,
            None => &self.component,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let ctx = SpanContext { id: SpanId(0xBEEF) };
        assert_eq!(SpanContext::from_header(&ctx.to_header()), ctx);
        assert_eq!(SpanContext::from_header("garbage"), SpanContext::NONE);
        assert_eq!(SpanContext::from_header("swf-zz"), SpanContext::NONE);
        assert!(SpanContext::NONE.is_none());
    }

    #[test]
    fn component_split() {
        let s = Span {
            id: SpanId(1),
            parent: SpanId::NONE,
            component: "node-2/kubelet".into(),
            name: "pod-start".into(),
            category: Category::ColdStart,
            start: SimTime::ZERO,
            end: None,
            links: vec![],
        };
        assert_eq!(s.process(), "node-2");
        assert_eq!(s.thread(), "kubelet");
        assert_eq!(s.duration_secs(), 0.0);
    }

    #[test]
    fn category_labels_are_unique() {
        let mut labels: Vec<_> = Category::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Category::ALL.len());
    }
}
