//! The metrics registry: counters, gauges, and virtual-time histograms
//! with nearest-rank quantiles, dumped as JSON.

use std::collections::BTreeMap;

/// Raw registry storage (inside the collector).
#[derive(Default)]
pub(crate) struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Vec<f64>>,
}

impl Metrics {
    pub(crate) fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub(crate) fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    pub(crate) fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), HistogramSummary::of(v)))
                .collect(),
        }
    }
}

/// Point-in-time view of the registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Summary statistics of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl HistogramSummary {
    fn of(values: &[f64]) -> HistogramSummary {
        if values.is_empty() {
            return HistogramSummary::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q = |p: f64| {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        HistogramSummary {
            count: values.len() as u64,
            mean: values.iter().sum::<f64>() / values.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
        }
    }
}

impl MetricsSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A counter's value, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A gauge's value, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram's summary, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Render as a JSON tree:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {count, mean, min, max, p50, p95, p99}}}`.
    pub fn to_json(&self) -> serde_json::Value {
        let mut counters = serde_json::Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), serde_json::Value::from(*v));
        }
        let mut gauges = serde_json::Map::new();
        for (k, v) in &self.gauges {
            gauges.insert(k.clone(), serde_json::Value::from(*v));
        }
        let mut histograms = serde_json::Map::new();
        for (k, h) in &self.histograms {
            let mut obj = serde_json::Map::new();
            obj.insert("count".to_string(), serde_json::Value::from(h.count));
            obj.insert("mean".to_string(), serde_json::Value::from(h.mean));
            obj.insert("min".to_string(), serde_json::Value::from(h.min));
            obj.insert("max".to_string(), serde_json::Value::from(h.max));
            obj.insert("p50".to_string(), serde_json::Value::from(h.p50));
            obj.insert("p95".to_string(), serde_json::Value::from(h.p95));
            obj.insert("p99".to_string(), serde_json::Value::from(h.p99));
            histograms.insert(k.clone(), serde_json::Value::Object(obj));
        }
        let mut root = serde_json::Map::new();
        root.insert("counters".to_string(), serde_json::Value::Object(counters));
        root.insert("gauges".to_string(), serde_json::Value::Object(gauges));
        root.insert(
            "histograms".to_string(),
            serde_json::Value::Object(histograms),
        );
        serde_json::Value::Object(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut m = Metrics::default();
        for v in 1..=100 {
            m.observe("lat", f64::from(v));
        }
        let snap = m.snapshot();
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.p50, 50.0);
        assert_eq!(h.p95, 95.0);
        assert_eq!(h.p99, 99.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn counters_and_gauges() {
        let mut m = Metrics::default();
        m.counter_add("jobs", 2);
        m.counter_add("jobs", 3);
        m.gauge_set("depth", 4.0);
        m.gauge_set("depth", 2.0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("jobs"), Some(5));
        assert_eq!(snap.gauge("depth"), Some(2.0));
        assert!(!snap.is_empty());
    }

    #[test]
    fn json_shape() {
        let mut m = Metrics::default();
        m.counter_add("invocations", 7);
        m.observe("cold_start_s", 1.5);
        let json = m.snapshot().to_json();
        assert_eq!(json["counters"]["invocations"].as_u64(), Some(7));
        assert_eq!(
            json["histograms"]["cold_start_s"]["count"].as_u64(),
            Some(1)
        );
        let text = json.to_string();
        let back = serde_json::from_str(&text).unwrap();
        assert_eq!(back["counters"]["invocations"].as_u64(), Some(7));
    }

    #[test]
    fn single_observation_quantiles() {
        let mut m = Metrics::default();
        m.observe("x", 42.0);
        let snap = m.snapshot();
        let h = *snap.histogram("x").unwrap();
        assert_eq!((h.p50, h.p95, h.p99), (42.0, 42.0, 42.0));
    }
}
