//! The metrics registry: counters, gauges, and virtual-time histograms
//! backed by bounded-memory log buckets ([`LogHistogram`]), dumped as
//! JSON with deterministic p50/p90/p95/p99/p999.

use std::collections::BTreeMap;

use crate::hist::LogHistogram;

/// Raw registry storage (inside the collector).
#[derive(Default)]
pub(crate) struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl Metrics {
    pub(crate) fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub(crate) fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    pub(crate) fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Iterate counters in name order (the snapshot scheduler's source).
    pub(crate) fn counters(&self) -> impl Iterator<Item = (&String, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// Iterate gauges in name order.
    pub(crate) fn gauges(&self) -> impl Iterator<Item = (&String, f64)> {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// Iterate histograms in name order.
    pub(crate) fn histograms(&self) -> impl Iterator<Item = (&String, &LogHistogram)> {
        self.histograms.iter()
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramSummary::of(h)))
                .collect(),
        }
    }
}

/// Point-in-time view of the registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Summary statistics of one histogram. `count`/`mean`/`min`/`max` are
/// exact; the percentiles are log-bucket upper bounds (nearest-rank,
/// ≤ ~4.5% relative quantization, clamped to `[min, max]`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean (exact).
    pub mean: f64,
    /// Smallest observation (exact).
    pub min: f64,
    /// Largest observation (exact).
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl HistogramSummary {
    /// Summarize a bucketed histogram.
    pub fn of(h: &LogHistogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count,
            mean: h.mean(),
            min: h.min,
            max: h.max,
            p50: h.percentile(0.50),
            p90: h.percentile(0.90),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
            p999: h.percentile(0.999),
        }
    }

    /// The value at a named percentile (used by the SLO engine).
    pub fn at(&self, pctl: crate::slo::Pctl) -> f64 {
        match pctl {
            crate::slo::Pctl::P50 => self.p50,
            crate::slo::Pctl::P90 => self.p90,
            crate::slo::Pctl::P95 => self.p95,
            crate::slo::Pctl::P99 => self.p99,
            crate::slo::Pctl::P999 => self.p999,
        }
    }
}

impl MetricsSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A counter's value, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A gauge's value, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram's summary, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Render as a JSON tree:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {count,
    /// mean, min, max, p50, p90, p95, p99, p999}}}`.
    pub fn to_json(&self) -> serde_json::Value {
        let mut counters = serde_json::Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), serde_json::Value::from(*v));
        }
        let mut gauges = serde_json::Map::new();
        for (k, v) in &self.gauges {
            gauges.insert(k.clone(), serde_json::Value::from(*v));
        }
        let mut histograms = serde_json::Map::new();
        for (k, h) in &self.histograms {
            let mut obj = serde_json::Map::new();
            obj.insert("count".to_string(), serde_json::Value::from(h.count));
            obj.insert("mean".to_string(), serde_json::Value::from(h.mean));
            obj.insert("min".to_string(), serde_json::Value::from(h.min));
            obj.insert("max".to_string(), serde_json::Value::from(h.max));
            obj.insert("p50".to_string(), serde_json::Value::from(h.p50));
            obj.insert("p90".to_string(), serde_json::Value::from(h.p90));
            obj.insert("p95".to_string(), serde_json::Value::from(h.p95));
            obj.insert("p99".to_string(), serde_json::Value::from(h.p99));
            obj.insert("p999".to_string(), serde_json::Value::from(h.p999));
            histograms.insert(k.clone(), serde_json::Value::Object(obj));
        }
        let mut root = serde_json::Map::new();
        root.insert("counters".to_string(), serde_json::Value::Object(counters));
        root.insert("gauges".to_string(), serde_json::Value::Object(gauges));
        root.insert(
            "histograms".to_string(),
            serde_json::Value::Object(histograms),
        );
        serde_json::Value::Object(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_bucket_bounds_near_nearest_rank() {
        let mut m = Metrics::default();
        for v in 1..=100 {
            m.observe("lat", f64::from(v));
        }
        let snap = m.snapshot();
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 100);
        // Percentiles are log-bucket upper bounds: within +1/16 of the
        // nearest-rank value, never below it.
        for (got, exact) in [(h.p50, 50.0), (h.p95, 95.0), (h.p99, 99.0)] {
            assert!(
                got >= exact && got <= exact * (1.0 + 1.0 / 16.0),
                "got {got}, nearest-rank {exact}"
            );
        }
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn counters_and_gauges() {
        let mut m = Metrics::default();
        m.counter_add("jobs", 2);
        m.counter_add("jobs", 3);
        m.gauge_set("depth", 4.0);
        m.gauge_set("depth", 2.0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("jobs"), Some(5));
        assert_eq!(snap.gauge("depth"), Some(2.0));
        assert!(!snap.is_empty());
    }

    #[test]
    fn json_shape() {
        let mut m = Metrics::default();
        m.counter_add("invocations", 7);
        m.observe("cold_start_s", 1.5);
        let json = m.snapshot().to_json();
        assert_eq!(json["counters"]["invocations"].as_u64(), Some(7));
        assert_eq!(
            json["histograms"]["cold_start_s"]["count"].as_u64(),
            Some(1)
        );
        assert!(json["histograms"]["cold_start_s"]["p999"].is_number());
        let text = json.to_string();
        let back = serde_json::from_str(&text).unwrap();
        assert_eq!(back["counters"]["invocations"].as_u64(), Some(7));
    }

    #[test]
    fn single_observation_quantiles() {
        let mut m = Metrics::default();
        m.observe("x", 42.0);
        let snap = m.snapshot();
        let h = *snap.histogram("x").unwrap();
        assert_eq!((h.p50, h.p95, h.p99, h.p999), (42.0, 42.0, 42.0, 42.0));
    }
}
