//! The span/metrics collector and the ambient (thread-local) handle.
//!
//! The simulation is strictly single-threaded, so an ambient collector
//! per thread is sound and keeps instrumentation call sites free of
//! plumbing: components call [`current`] and record. By default the
//! ambient collector is disabled — every recording method is then one
//! branch and an immediate return, which is what keeps tracing
//! zero-cost (and runs bit-identical) when off.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use swf_simcore::{now, SimTime};

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::series::{SeriesConfig, SeriesStore};
use crate::span::{Category, Span, SpanContext, SpanId};

#[derive(Default)]
struct Inner {
    spans: Vec<Span>,
    anchors: BTreeMap<String, SpanId>,
    metrics: Metrics,
    series: SeriesStore,
}

/// Handle to a run's span tree and metrics registry.
///
/// Clones share the same storage; a disabled handle records nothing.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("spans", &self.span_count())
            .finish()
    }
}

impl Obs {
    /// A collector that records nothing (the zero-cost default).
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A fresh recording collector.
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Rc::new(RefCell::new(Inner::default()))),
        }
    }

    /// True when this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span starting now; the caller must [`end`](Obs::end) it
    /// (or use [`span`](Obs::span) for scope-bound spans).
    pub fn start_span(
        &self,
        parent: SpanContext,
        component: &str,
        name: impl Into<String>,
        category: Category,
    ) -> SpanContext {
        let Some(inner) = &self.inner else {
            return SpanContext::NONE;
        };
        let mut inner = inner.borrow_mut();
        let id = SpanId(inner.spans.len() as u64 + 1);
        inner.spans.push(Span {
            id,
            parent: parent.id,
            component: component.to_string(),
            name: name.into(),
            category,
            start: now(),
            end: None,
            links: Vec::new(),
        });
        SpanContext { id }
    }

    /// Open a scope-bound span: ends when the guard drops.
    pub fn span(
        &self,
        parent: SpanContext,
        component: &str,
        name: impl Into<String>,
        category: Category,
    ) -> SpanGuard {
        SpanGuard {
            obs: self.clone(),
            ctx: self.start_span(parent, component, name, category),
        }
    }

    /// Close an open span at the current virtual time (idempotent).
    ///
    /// Outside a running simulation — guards dropped during `Sim`
    /// teardown, when leftover task futures unwind — there is no "current
    /// virtual time", so the span is left open instead of panicking.
    pub fn end(&self, ctx: SpanContext) {
        let Some(inner) = &self.inner else { return };
        if ctx.is_none() {
            return;
        }
        let Some(sim) = swf_simcore::try_current() else {
            return;
        };
        let mut inner = inner.borrow_mut();
        let at = sim.now();
        if let Some(span) = inner.spans.get_mut(ctx.id.0 as usize - 1) {
            if span.end.is_none() {
                span.end = Some(at);
            }
        }
    }

    /// Record a span retroactively with explicit bounds — used where the
    /// duration is only known after the fact (e.g. time a job sat idle
    /// in the schedd queue, measured when the negotiator matches it).
    pub fn record_span(
        &self,
        parent: SpanContext,
        component: &str,
        name: impl Into<String>,
        category: Category,
        start: SimTime,
        end: SimTime,
    ) -> SpanContext {
        let Some(inner) = &self.inner else {
            return SpanContext::NONE;
        };
        let mut inner = inner.borrow_mut();
        let id = SpanId(inner.spans.len() as u64 + 1);
        inner.spans.push(Span {
            id,
            parent: parent.id,
            component: component.to_string(),
            name: name.into(),
            category,
            start,
            end: Some(end.max(start)),
            links: Vec::new(),
        });
        SpanContext { id }
    }

    /// Record that `span` causally depends on `upstream` (a span from
    /// another subtree, e.g. a pod cold start the activator waited on).
    pub fn link_from(&self, span: SpanContext, upstream: SpanContext) {
        let Some(inner) = &self.inner else { return };
        if span.is_none() || upstream.is_none() {
            return;
        }
        let mut inner = inner.borrow_mut();
        if let Some(s) = inner.spans.get_mut(span.id.0 as usize - 1) {
            if !s.links.contains(&upstream.id) {
                s.links.push(upstream.id);
            }
        }
    }

    /// Publish a span under a well-known key (e.g. `pod/matmul-0`) so
    /// other components can [`link_from`](Obs::link_from) it later.
    pub fn set_anchor(&self, key: &str, ctx: SpanContext) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().anchors.insert(key.to_string(), ctx.id);
    }

    /// Look up a published anchor.
    pub fn anchor(&self, key: &str) -> SpanContext {
        let Some(inner) = &self.inner else {
            return SpanContext::NONE;
        };
        inner
            .borrow()
            .anchors
            .get(key)
            .map(|&id| SpanContext { id })
            .unwrap_or(SpanContext::NONE)
    }

    /// Snapshot of all recorded spans (creation order).
    pub fn spans(&self) -> Vec<Span> {
        match &self.inner {
            Some(inner) => inner.borrow().spans.clone(),
            None => Vec::new(),
        }
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.borrow().spans.len(),
            None => 0,
        }
    }

    /// Add to a named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().metrics.counter_add(name, delta);
    }

    /// Set a named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().metrics.gauge_set(name, value);
    }

    /// Record one observation into a named histogram (virtual-time
    /// durations in seconds, sizes in bytes — whatever the metric is).
    pub fn observe(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().metrics.observe(name, value);
    }

    /// Snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.borrow().metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Metrics registry rendered as a JSON tree.
    pub fn metrics_json(&self) -> serde_json::Value {
        self.metrics().to_json()
    }

    /// Install a time-series configuration; the snapshot scheduler
    /// ([`crate::spawn_sampler`]) reads it. A no-op on disabled handles.
    pub fn configure_series(&self, config: SeriesConfig) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().series.config = Some(config);
    }

    /// The configured sampling interval, if any.
    pub fn series_interval(&self) -> Option<swf_simcore::SimDuration> {
        let inner = self.inner.as_ref()?;
        let inner = inner.borrow();
        inner.series.config.as_ref().map(|c| c.interval)
    }

    /// Take one time-series sample at the current virtual time. Returns
    /// `false` when sampling is off, the tick cap is reached, or there is
    /// no running simulation — the sampler task exits on `false`.
    pub fn sample_now(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let Some(sim) = swf_simcore::try_current() else {
            return false;
        };
        let t_ns = sim.now().as_nanos();
        let mut inner = inner.borrow_mut();
        let inner = &mut *inner;
        inner.series.sample(&inner.metrics, t_ns)
    }

    /// True once at least one time-series sample was taken.
    pub fn has_series(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.borrow().series.has_samples(),
            None => false,
        }
    }

    /// Time-series store rendered as a JSON tree (empty shape when
    /// sampling never ran).
    pub fn series_json(&self) -> serde_json::Value {
        match &self.inner {
            Some(inner) => inner.borrow().series.to_json(),
            None => SeriesStore::default().to_json(),
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Obs> = RefCell::new(Obs::disabled());
}

/// The ambient collector for this thread (disabled unless installed).
pub fn current() -> Obs {
    CURRENT.with(|c| c.borrow().clone())
}

/// Install `obs` as the ambient collector; restores the previous one
/// when the guard drops. Install a fresh collector per simulated run.
pub fn install(obs: Obs) -> InstallGuard {
    let previous = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), obs));
    InstallGuard { previous }
}

/// Restores the previously installed ambient collector on drop.
pub struct InstallGuard {
    previous: Obs,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let previous = std::mem::take(&mut self.previous);
        CURRENT.with(|c| *c.borrow_mut() = previous);
    }
}

/// Ends its span when dropped.
pub struct SpanGuard {
    obs: Obs,
    ctx: SpanContext,
}

impl SpanGuard {
    /// The guarded span's context (propagate this to children).
    pub fn ctx(&self) -> SpanContext {
        self.ctx
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.obs.end(self.ctx);
    }
}

/// Adapter letting the flat `swf-simcore` [`Trace`](swf_simcore::Trace)
/// ring emit into a collector as zero-length "instant" spans, so one
/// sink sees both the legacy event log and the span tree.
pub struct ObsTraceSink {
    obs: Obs,
}

impl ObsTraceSink {
    /// Sink forwarding into `obs`.
    pub fn new(obs: Obs) -> Self {
        ObsTraceSink { obs }
    }
}

impl swf_simcore::TraceSink for ObsTraceSink {
    fn event(&self, at: SimTime, component: &str, event: &str, detail: &str) {
        let name = if detail.is_empty() {
            event.to_string()
        } else {
            format!("{event}: {detail}")
        };
        self.obs
            .record_span(SpanContext::NONE, component, name, Category::Other, at, at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::{secs, sleep, Sim};

    #[test]
    fn disabled_records_nothing() {
        let obs = Obs::disabled();
        let sim = Sim::new();
        let obs2 = obs.clone();
        sim.block_on(async move {
            let obs = obs2;
            let ctx = obs.start_span(SpanContext::NONE, "x/y", "op", Category::Compute);
            assert!(ctx.is_none());
            obs.end(ctx);
            obs.counter_add("c", 1);
            obs.observe("h", 1.0);
        });
        assert_eq!(obs.span_count(), 0);
        assert!(obs.metrics().is_empty());
    }

    #[test]
    fn spans_nest_and_measure_virtual_time() {
        let obs = Obs::enabled();
        let sim = Sim::new();
        let handle = obs.clone();
        sim.block_on(async move {
            let root = handle.span(SpanContext::NONE, "condor/dagman", "wf", Category::Queue);
            sleep(secs(1.0)).await;
            let child = handle.start_span(root.ctx(), "node-0/startd", "run", Category::Compute);
            sleep(secs(2.0)).await;
            handle.end(child);
        });
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "wf");
        assert_eq!(spans[1].parent, spans[0].id);
        assert!((spans[1].duration_secs() - 2.0).abs() < 1e-9);
        assert!((spans[0].duration_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ambient_install_restores_previous() {
        assert!(!current().is_enabled());
        let obs = Obs::enabled();
        {
            let _guard = install(obs.clone());
            assert!(current().is_enabled());
            current().counter_add("hits", 2);
        }
        assert!(!current().is_enabled());
        assert_eq!(obs.metrics().counter("hits"), Some(2));
    }

    #[test]
    fn anchors_and_links() {
        let obs = Obs::enabled();
        let sim = Sim::new();
        let h = obs.clone();
        sim.block_on(async move {
            let pod = h.start_span(
                SpanContext::NONE,
                "node-1/kubelet",
                "pod",
                Category::ColdStart,
            );
            h.set_anchor("pod/matmul-0", pod);
            h.end(pod);
            let wait = h.start_span(
                SpanContext::NONE,
                "knative/activator",
                "wait",
                Category::ColdStart,
            );
            h.link_from(wait, h.anchor("pod/matmul-0"));
            h.link_from(wait, h.anchor("pod/matmul-0")); // dedup
            h.end(wait);
        });
        let spans = obs.spans();
        assert_eq!(spans[1].links, vec![spans[0].id]);
        assert!(obs.anchor("pod/unknown").is_none());
    }
}
