//! Fixed log-bucket histograms: bounded memory, bitwise-reproducible.
//!
//! The first-generation registry kept every observation in a `Vec<f64>`
//! for the whole run — unbounded memory, and percentiles required a sort
//! per snapshot. [`LogHistogram`] replaces that backing with
//! base-2 log buckets, 16 sub-buckets per octave (≤ ~4.5% relative
//! quantization error): memory is bounded by the number of *distinct
//! magnitudes* observed, never by the observation count.
//!
//! Bucket indexing is pure bit manipulation on the IEEE-754
//! representation — no `log2`, no libm — so indexing, percentile
//! extraction, and [`merge`](LogHistogram::merge) are bit-for-bit
//! reproducible across platforms. `count`, `sum`/`mean`, `min`, and
//! `max` are tracked exactly (in observation order), matching the old
//! `Vec` backing bitwise; only the interior percentiles are quantized to
//! bucket upper bounds (clamped to the exact `[min, max]` envelope, so a
//! single-observation histogram still reports its value exactly).

/// Sub-bucket resolution: 16 buckets per power of two (4 mantissa bits).
const SUBBUCKET_BITS: u32 = 4;
const SUBBUCKETS: i32 = 1 << SUBBUCKET_BITS;

/// A bounded-memory histogram over non-negative `f64` observations.
///
/// Negative and NaN observations are counted in `rejected` (they never
/// occur for the durations/sizes this registry records, but a telemetry
/// pipeline must not corrupt its buckets when handed garbage).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LogHistogram {
    /// Total accepted observations.
    pub count: u64,
    /// Exact sum of accepted observations, in observation order.
    pub sum: f64,
    /// Smallest accepted observation (0.0 when empty).
    pub min: f64,
    /// Largest accepted observation (0.0 when empty).
    pub max: f64,
    /// Observations equal to zero (subnormals clamp here too).
    zeros: u64,
    /// NaN / negative observations, counted but not bucketed.
    pub rejected: u64,
    /// Occupied log buckets: index → count. Sorted, so percentile walks
    /// and merges are deterministic.
    buckets: std::collections::BTreeMap<i32, u64>,
}

/// Bucket index of a positive, normal `f64`: the unbiased exponent
/// scaled by the sub-bucket count, plus the top mantissa bits.
fn bucket_index(v: f64) -> i32 {
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7FF) as i32 - 1023;
    let sub = ((bits >> (52 - SUBBUCKET_BITS)) & (SUBBUCKETS as u64 - 1)) as i32;
    exp * SUBBUCKETS + sub
}

/// Upper bound of a bucket: `(1 + (sub+1)/16) · 2^exp`, an exact dyadic
/// rational (bit-exact to construct on every platform).
fn bucket_upper(index: i32) -> f64 {
    let exp = index.div_euclid(SUBBUCKETS);
    let sub = index.rem_euclid(SUBBUCKETS);
    let mantissa = 1.0 + (sub + 1) as f64 / SUBBUCKETS as f64;
    // 2^exp via bit construction for normal exponents; the extremes fall
    // back to powi (still deterministic: exact powers of two).
    let scale = if (-1022..=1023).contains(&exp) {
        f64::from_bits(((exp + 1023) as u64) << 52)
    } else {
        2f64.powi(exp)
    };
    mantissa * scale
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Record one observation. (Named `record`, not `observe`, so the
    /// metric-name lint doesn't mistake value-only calls for emission
    /// sites.)
    pub fn record(&mut self, v: f64) {
        if v.is_nan() || v < 0.0 {
            self.rejected += 1;
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        self.sum += v;
        if v == 0.0 || !v.is_normal() {
            // Zero and subnormals (< 2.3e-308 — below any duration the
            // simulation can express) share the zero bucket.
            self.zeros += 1;
        } else {
            *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        }
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`), quantized to the bucket
    /// upper bound and clamped to the exact `[min, max]` envelope.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zeros;
        if rank <= seen {
            return 0f64.clamp(self.min, self.max);
        }
        for (&idx, &n) in &self.buckets {
            seen += n;
            if rank <= seen {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one (bucket-wise addition; the
    /// result is bitwise-identical regardless of how observations were
    /// partitioned between the two sides, because bucket counts are
    /// integers and `sum` addition follows the deterministic merge order).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            self.rejected += other.rejected;
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = if other.min < self.min {
            other.min
        } else {
            self.min
        };
        self.max = if other.max > self.max {
            other.max
        } else {
            self.max
        };
        self.count += other.count;
        self.sum += other.sum;
        self.zeros += other.zeros;
        self.rejected += other.rejected;
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    /// Number of occupied buckets — the memory bound, independent of
    /// observation count.
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len() + usize::from(self.zeros > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 1.0 is the first sub-bucket of octave 0: upper bound 1 + 1/16.
        assert_eq!(bucket_index(1.0), 0);
        assert_eq!(bucket_upper(0), 1.0 + 1.0 / 16.0);
        // Just below 2.0 sits in the last sub-bucket of octave 0; 2.0
        // itself starts octave 1.
        assert_eq!(bucket_index(1.999), SUBBUCKETS - 1);
        assert_eq!(bucket_index(2.0), SUBBUCKETS);
        assert_eq!(bucket_upper(SUBBUCKETS - 1), 2.0);
        assert_eq!(bucket_upper(SUBBUCKETS), 2.0 * (1.0 + 1.0 / 16.0));
        // Sub-bucket edges are half-open [lower, upper): a value exactly
        // on an upper edge indexes into the next bucket.
        let edge = 1.0 + 1.0 / 16.0;
        assert_eq!(bucket_index(edge), 1);
    }

    #[test]
    fn relative_quantization_error_is_bounded() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000u32 {
            h.record(f64::from(i) * 0.001);
        }
        for p in [0.5, 0.9, 0.99, 0.999] {
            let exact = 10.0 * p; // uniform 0.001..=10.0
            let got = h.percentile(p);
            assert!(
                got >= exact * 0.999 && got <= exact * (1.0 + 1.0 / 16.0),
                "p{p}: got {got}, exact {exact}"
            );
        }
        // Memory is bounded by distinct magnitudes, not observations.
        assert!(h.occupied_buckets() < 250, "{}", h.occupied_buckets());
    }

    #[test]
    fn exact_fields_match_vec_backing() {
        let values = [3.5, 0.0, 1e-3, 42.0, 0.25, 3.5];
        let mut h = LogHistogram::new();
        for v in values {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 42.0);
        // Sum in observation order: bitwise what Vec + iter().sum() gave.
        assert_eq!(h.sum.to_bits(), values.iter().sum::<f64>().to_bits());
    }

    #[test]
    fn single_observation_is_exact_at_every_percentile() {
        let mut h = LogHistogram::new();
        h.record(42.0);
        for p in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.percentile(p), 42.0);
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut all = LogHistogram::new();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for i in 0..1000u32 {
            let v = f64::from(i) * 0.017 + 0.001;
            all.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        // Interleaved observation vs merge-of-halves: identical buckets,
        // counts, min/max — so every percentile is bitwise identical.
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged.count, all.count);
        assert_eq!(merged.min.to_bits(), all.min.to_bits());
        assert_eq!(merged.max.to_bits(), all.max.to_bits());
        for p in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.percentile(p).to_bits(), all.percentile(p).to_bits());
        }
    }

    #[test]
    fn merge_into_empty_and_from_empty() {
        let mut h = LogHistogram::new();
        h.record(1.5);
        let mut empty = LogHistogram::new();
        empty.merge(&h);
        assert_eq!(empty, h);
        h.merge(&LogHistogram::new());
        assert_eq!(h.count, 1);
    }

    #[test]
    fn garbage_is_rejected_not_bucketed() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(2.0);
        assert_eq!(h.rejected, 2);
        assert_eq!(h.count, 1);
        assert_eq!(h.percentile(0.99), 2.0);
    }

    #[test]
    fn zeros_sort_first() {
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.record(0.0);
        }
        for _ in 0..10 {
            h.record(5.0);
        }
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.percentile(0.99), 5.0);
    }
}
