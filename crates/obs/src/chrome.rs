//! Chrome-trace / Perfetto export (`trace_event` JSON array format).
//!
//! One trace "process" per simulated node (the part of the component
//! path before `/`), one "thread" per component within it. Spans become
//! `ph:"X"` complete events with microsecond timestamps; zero-length
//! spans become `ph:"i"` instants; causal links become `ph:"s"`/`ph:"f"`
//! flow events. The output loads directly in `chrome://tracing` and
//! <https://ui.perfetto.dev>.

use std::collections::BTreeMap;

use swf_simcore::SimTime;

use crate::span::Span;

fn micros(t: SimTime) -> u64 {
    let ns = (t - SimTime::ZERO).as_nanos();
    ns / 1_000
}

fn event(ph: &str, name: &str, cat: &str, pid: u64, tid: u64, ts: u64) -> serde_json::Map {
    let mut e = serde_json::Map::new();
    e.insert("ph".to_string(), serde_json::Value::from(ph));
    e.insert("name".to_string(), serde_json::Value::from(name));
    if !cat.is_empty() {
        e.insert("cat".to_string(), serde_json::Value::from(cat));
    }
    e.insert("pid".to_string(), serde_json::Value::from(pid));
    e.insert("tid".to_string(), serde_json::Value::from(tid));
    e.insert("ts".to_string(), serde_json::Value::from(ts));
    e
}

fn metadata(kind: &str, label: &str, pid: u64, tid: u64) -> serde_json::Value {
    let mut e = event("M", kind, "", pid, tid, 0);
    let mut args = serde_json::Map::new();
    args.insert("name".to_string(), serde_json::Value::from(label));
    e.insert("args".to_string(), serde_json::Value::Object(args));
    serde_json::Value::Object(e)
}

/// Export `spans` as a Chrome-trace JSON array.
///
/// `prefix` (e.g. a fig6 mix label) namespaces process names so traces
/// from several runs can be merged into one viewable file.
pub fn chrome_trace(spans: &[Span], prefix: &str) -> serde_json::Value {
    // Deterministic pid/tid assignment: sorted name order.
    let mut processes: BTreeMap<String, u64> = BTreeMap::new();
    let mut threads: BTreeMap<(String, String), u64> = BTreeMap::new();
    for s in spans {
        let process = if prefix.is_empty() {
            s.process().to_string()
        } else {
            format!("{prefix}/{}", s.process())
        };
        processes.entry(process.clone()).or_insert(0);
        threads
            .entry((process, s.thread().to_string()))
            .or_insert(0);
    }
    for (i, pid) in processes.values_mut().enumerate() {
        *pid = i as u64 + 1;
    }
    let mut next_tid: BTreeMap<String, u64> = BTreeMap::new();
    for ((process, _), tid) in threads.iter_mut() {
        let n = next_tid.entry(process.clone()).or_insert(0);
        *n += 1;
        *tid = *n;
    }

    let mut events: Vec<serde_json::Value> = Vec::new();
    for (process, pid) in &processes {
        events.push(metadata("process_name", process, *pid, 0));
    }
    for ((process, thread), tid) in &threads {
        events.push(metadata("thread_name", thread, processes[process], *tid));
    }

    for s in spans {
        let process = if prefix.is_empty() {
            s.process().to_string()
        } else {
            format!("{prefix}/{}", s.process())
        };
        let pid = processes[&process];
        let tid = threads[&(process, s.thread().to_string())];
        let ts = micros(s.start);
        let end = micros(s.end_or_start());
        let mut e = if end > ts {
            let mut e = event("X", &s.name, s.category.label(), pid, tid, ts);
            e.insert("dur".to_string(), serde_json::Value::from(end - ts));
            e
        } else {
            let mut e = event("i", &s.name, s.category.label(), pid, tid, ts);
            e.insert("s".to_string(), serde_json::Value::from("t"));
            e
        };
        let mut args = serde_json::Map::new();
        args.insert("span".to_string(), serde_json::Value::from(s.id.0));
        args.insert("parent".to_string(), serde_json::Value::from(s.parent.0));
        e.insert("args".to_string(), serde_json::Value::Object(args));
        events.push(serde_json::Value::Object(e));

        // Causal links as flow events: start at the upstream span's end,
        // finish at this span's start.
        for (k, up_id) in s.links.iter().enumerate() {
            let Some(up) = spans.get(up_id.0 as usize - 1) else {
                continue;
            };
            let up_process = if prefix.is_empty() {
                up.process().to_string()
            } else {
                format!("{prefix}/{}", up.process())
            };
            let flow_id = s.id.0 * 1_000 + k as u64;
            let mut start = event(
                "s",
                "causal",
                "link",
                processes[&up_process],
                threads[&(up_process, up.thread().to_string())],
                micros(up.end_or_start()),
            );
            start.insert("id".to_string(), serde_json::Value::from(flow_id));
            events.push(serde_json::Value::Object(start));
            let mut finish = event("f", "causal", "link", pid, tid, ts);
            finish.insert("id".to_string(), serde_json::Value::from(flow_id));
            finish.insert("bp".to_string(), serde_json::Value::from("e"));
            events.push(serde_json::Value::Object(finish));
        }
    }
    serde_json::Value::Array(events)
}

/// [`chrome_trace`] rendered to its on-disk JSON string.
pub fn chrome_trace_to_string(spans: &[Span], prefix: &str) -> String {
    chrome_trace(spans, prefix).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Category, SpanContext};
    use crate::Obs;
    use swf_simcore::{secs, sleep, Sim};

    fn sample_spans() -> Vec<Span> {
        let obs = Obs::enabled();
        let sim = Sim::new();
        let h = obs.clone();
        sim.block_on(async move {
            let wf = h.start_span(
                SpanContext::NONE,
                "condor/dagman",
                "workflow:w0",
                Category::Queue,
            );
            sleep(secs(0.5)).await;
            let pod = h.start_span(
                SpanContext::NONE,
                "node-1/kubelet",
                "pod-start",
                Category::ColdStart,
            );
            sleep(secs(1.0)).await;
            h.end(pod);
            let wait = h.start_span(wf, "knative/activator", "cold-wait", Category::ColdStart);
            h.link_from(wait, pod);
            h.end(wait);
            h.end(wf);
        });
        obs.spans()
    }

    #[test]
    fn export_is_valid_and_complete() {
        let spans = sample_spans();
        let text = chrome_trace_to_string(&spans, "");
        let parsed = serde_json::from_str(&text).unwrap();
        let events = parsed.as_array().expect("array of trace events");
        // 3 processes + 3 threads metadata, 3 span events, 1 flow pair.
        assert_eq!(events.len(), 3 + 3 + 3 + 2);
        for e in events {
            assert!(e.get("ph").is_some());
            assert!(e.get("pid").is_some());
        }
        let x_events: Vec<_> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .collect();
        assert_eq!(x_events.len(), 2, "two non-zero-length spans");
        assert!(x_events
            .iter()
            .any(|e| e["name"].as_str() == Some("workflow:w0")));
    }

    #[test]
    fn prefix_namespaces_processes() {
        let spans = sample_spans();
        let json = chrome_trace(&spans, "all-native");
        let names: Vec<String> = json
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["name"].as_str() == Some("process_name"))
            .map(|e| e["args"]["name"].as_str().unwrap().to_string())
            .collect();
        assert!(
            names.iter().all(|n| n.starts_with("all-native/")),
            "{names:?}"
        );
    }

    #[test]
    fn timestamps_are_micros() {
        let spans = sample_spans();
        let json = chrome_trace(&spans, "");
        let wf = json
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["name"].as_str() == Some("workflow:w0"))
            .unwrap();
        assert_eq!(wf["ts"].as_u64(), Some(0));
        assert_eq!(wf["dur"].as_u64(), Some(1_500_000));
    }
}
