//! `obsq` — query exported simulation traces from the command line.
//!
//! Operates on `swf-spans/v1` documents (written by the bench suite's
//! `--spans-out`, or any [`swf_obs::spans_to_json`] caller):
//!
//! ```text
//! obsq summary  BENCH_quick.spans.json
//! obsq spans    BENCH_quick.spans.json --category claim-activation --top 5
//! obsq group-by BENCH_quick.spans.json --group category --label fig5
//! obsq folded   BENCH_quick.spans.json --label ablations --out flame.folded
//! ```
//!
//! Subcommands: `summary` (per-group counts + top offender), `spans`
//! (top-N slowest matching spans), `group-by` (duration distributions
//! per component/category/name), `folded` (flamegraph folded stacks).
//! Filters: `--label` (scenario group), `--component` (substring),
//! `--category` (label), `--min-s` (minimum duration). `--out` writes
//! to a file instead of stdout. Output over the same input is
//! byte-identical across runs — queries are part of the determinism
//! surface.

use std::process::ExitCode;

use swf_obs::{
    folded_stacks, group_by, group_rows_json, spans_from_json, top_offender, top_slowest, Category,
    GroupKey, Span, SpanFilter,
};

fn usage() -> String {
    "usage: obsq <summary|spans|group-by|folded> <trace.json> \
     [--label L] [--component S] [--category C] [--min-s F] \
     [--group component|category|name] [--top N] [--out PATH]"
        .to_string()
}

struct Args {
    command: String,
    path: String,
    label: Option<String>,
    filter: SpanFilter,
    group: GroupKey,
    top: usize,
    out: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut label = None;
    let mut filter = SpanFilter::all();
    let mut group = GroupKey::Category;
    let mut top = 10usize;
    let mut out = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--label" => label = Some(value("--label")?),
            "--component" => filter = filter.component(&value("--component")?),
            "--category" => {
                let raw = value("--category")?;
                let category = Category::from_label(&raw)
                    .ok_or_else(|| format!("unknown category {raw:?}"))?;
                filter = filter.category(category);
            }
            "--min-s" => {
                let raw = value("--min-s")?;
                let min: f64 = raw
                    .parse()
                    .map_err(|_| format!("--min-s wants a number, got {raw:?}"))?;
                filter = filter.min_duration(min);
            }
            "--group" => {
                let raw = value("--group")?;
                group = GroupKey::parse(&raw)
                    .ok_or_else(|| format!("--group wants component|category|name, got {raw:?}"))?;
            }
            "--top" => {
                let raw = value("--top")?;
                top = raw
                    .parse()
                    .map_err(|_| format!("--top wants an integer, got {raw:?}"))?;
            }
            "--out" => out = Some(value("--out")?),
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
    }
    let [command, path] = positional.as_slice() else {
        return Err(usage());
    };
    Ok(Args {
        command: command.clone(),
        path: path.clone(),
        label,
        filter,
        group,
        top,
        out,
    })
}

fn load_groups(path: &str, label: Option<&str>) -> Result<Vec<(String, Vec<Span>)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not JSON: {e}"))?;
    let mut groups =
        spans_from_json(&doc).ok_or_else(|| format!("{path} is not a swf-spans/v1 document"))?;
    if let Some(label) = label {
        groups.retain(|(l, _)| l == label);
        if groups.is_empty() {
            return Err(format!("no group labelled {label:?} in {path}"));
        }
    }
    Ok(groups)
}

fn span_line(span: &Span) -> String {
    format!(
        "{:>12.6}s  {:<16} {:<24} {}",
        span.duration_secs(),
        span.category.label(),
        span.component,
        span.name
    )
}

fn run(args: &Args) -> Result<String, String> {
    let groups = load_groups(&args.path, args.label.as_deref())?;
    let mut out = String::new();
    match args.command.as_str() {
        "summary" => {
            for (label, spans) in &groups {
                let matched = args.filter.apply(spans);
                out.push_str(&format!("{label}: {} spans", matched.len()));
                if matched.len() != spans.len() {
                    out.push_str(&format!(" (of {})", spans.len()));
                }
                out.push('\n');
                if let Some(line) = top_offender(spans) {
                    out.push_str(&format!("  {line}\n"));
                }
            }
        }
        "spans" => {
            for (label, spans) in &groups {
                out.push_str(&format!("{label}:\n"));
                for span in top_slowest(spans, &args.filter, args.top) {
                    out.push_str(&format!("  {}\n", span_line(span)));
                }
            }
        }
        "group-by" => {
            let mut doc = serde_json::Map::new();
            for (label, spans) in &groups {
                let rows = group_by(spans, &args.filter, args.group);
                doc.insert(label.clone(), group_rows_json(&rows));
            }
            out = serde_json::to_string(&serde_json::Value::Object(doc))
                .map_err(|e| format!("render: {e}"))?;
            out.push('\n');
        }
        "folded" => {
            for (label, spans) in &groups {
                let matched: Vec<Span> = args.filter.apply(spans).into_iter().cloned().collect();
                for line in folded_stacks(&matched) {
                    // Prefix the scenario label as the root frame so one
                    // file can hold every scenario's flamegraph.
                    out.push_str(&format!("{label};{line}\n"));
                }
            }
        }
        other => return Err(format!("unknown command {other:?}\n{}", usage())),
    }
    Ok(out)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("obsq: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(output) => {
            if let Some(path) = &args.out {
                if let Err(e) = std::fs::write(path, &output) {
                    eprintln!("obsq: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
            } else {
                print!("{output}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obsq: {e}");
            ExitCode::FAILURE
        }
    }
}
