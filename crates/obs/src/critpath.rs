//! Critical-path analysis over a finished span tree.
//!
//! Given a root span, the analyzer walks *backwards* through its
//! contributors (children plus causal links), always following the span
//! that finished last before the current cursor — the chain that
//! actually determined the finish time. Every moment of the root's
//! window is attributed to exactly one category: leaf time to the leaf
//! span's category, un-covered gaps to the enclosing span's category
//! (e.g. the gap between two DAGMan polls attributes to the workflow's
//! `queue` time). The result is both the longest causal chain and a
//! per-category breakdown that sums exactly to the makespan.

use std::collections::BTreeMap;

use swf_simcore::SimTime;

use crate::span::{Category, Span, SpanId};

/// One leaf segment of the critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct CritStep {
    /// The span active during this segment.
    pub span: SpanId,
    /// Its operation name.
    pub name: String,
    /// Its `process/thread` component.
    pub component: String,
    /// Its category.
    pub category: Category,
    /// Segment start, seconds of virtual time.
    pub enter_s: f64,
    /// Segment end, seconds of virtual time.
    pub exit_s: f64,
}

impl CritStep {
    /// Segment length in seconds.
    pub fn duration_s(&self) -> f64 {
        self.exit_s - self.enter_s
    }
}

/// The analyzed critical path of one root span.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalPath {
    /// The analyzed root.
    pub root: SpanId,
    /// The root's name.
    pub root_name: String,
    /// Root window length in seconds (equals the breakdown's total).
    pub makespan_s: f64,
    /// Leaf segments in chronological order.
    pub steps: Vec<CritStep>,
    /// Seconds attributed per category.
    pub breakdown: BTreeMap<Category, f64>,
}

impl CriticalPath {
    /// Seconds attributed to `category`.
    pub fn seconds(&self, category: Category) -> f64 {
        self.breakdown.get(&category).copied().unwrap_or(0.0)
    }

    /// Fraction of the makespan attributed to the given categories.
    pub fn share(&self, categories: &[Category]) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        categories.iter().map(|c| self.seconds(*c)).sum::<f64>() / self.makespan_s
    }

    /// Render the per-category table, largest share first.
    pub fn render_breakdown(&self) -> String {
        use std::fmt::Write;
        let mut rows: Vec<(Category, f64)> = Category::ALL
            .iter()
            .map(|&c| (c, self.seconds(c)))
            .filter(|(_, s)| *s > 0.0)
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out = String::new();
        let _ = writeln!(out, "  {:<18} {:>12} {:>8}", "category", "seconds", "share");
        for (cat, secs) in &rows {
            let _ = writeln!(
                out,
                "  {:<18} {:>12.3} {:>7.1}%",
                cat.label(),
                secs,
                100.0 * secs / self.makespan_s.max(f64::MIN_POSITIVE)
            );
        }
        let _ = writeln!(
            out,
            "  {:<18} {:>12.3} {:>7.1}%",
            "makespan", self.makespan_s, 100.0
        );
        out
    }

    /// Render as a JSON tree:
    /// `{"root": id, "root_name", "makespan_s", "breakdown": {category: seconds},
    ///   "steps": [{"name", "component", "category", "enter_s", "exit_s"}]}`.
    ///
    /// All fields are virtual-time quantities, so the rendering is
    /// deterministic and byte-comparable across runs (the bench suite's
    /// drift check relies on this).
    pub fn to_json(&self) -> serde_json::Value {
        let mut breakdown = serde_json::Map::new();
        for (cat, secs) in &self.breakdown {
            breakdown.insert(cat.label().to_string(), serde_json::Value::from(*secs));
        }
        let steps: Vec<serde_json::Value> = self
            .steps
            .iter()
            .map(|s| {
                let mut obj = serde_json::Map::new();
                obj.insert("name".to_string(), serde_json::Value::from(s.name.clone()));
                obj.insert(
                    "component".to_string(),
                    serde_json::Value::from(s.component.clone()),
                );
                obj.insert(
                    "category".to_string(),
                    serde_json::Value::from(s.category.label()),
                );
                obj.insert("enter_s".to_string(), serde_json::Value::from(s.enter_s));
                obj.insert("exit_s".to_string(), serde_json::Value::from(s.exit_s));
                serde_json::Value::Object(obj)
            })
            .collect();
        let mut root = serde_json::Map::new();
        root.insert("root".to_string(), serde_json::Value::from(self.root.0));
        root.insert(
            "root_name".to_string(),
            serde_json::Value::from(self.root_name.clone()),
        );
        root.insert(
            "makespan_s".to_string(),
            serde_json::Value::from(self.makespan_s),
        );
        root.insert(
            "breakdown".to_string(),
            serde_json::Value::Object(breakdown),
        );
        root.insert("steps".to_string(), serde_json::Value::Array(steps));
        serde_json::Value::Object(root)
    }

    /// Render the chronological chain of leaf segments.
    pub fn render_chain(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for step in &self.steps {
            let _ = writeln!(
                out,
                "  [{:>10.3}s – {:>10.3}s] {:<16} {:<24} {}",
                step.enter_s,
                step.exit_s,
                step.category.label(),
                step.component,
                step.name
            );
        }
        out
    }
}

/// Root spans (no parent), in id order.
pub fn roots(spans: &[Span]) -> Vec<&Span> {
    spans.iter().filter(|s| s.parent.is_none()).collect()
}

fn secs_of(t: SimTime) -> f64 {
    (t - SimTime::ZERO).as_secs_f64()
}

struct Analyzer<'a> {
    spans: &'a [Span],
    children: BTreeMap<SpanId, Vec<SpanId>>,
    steps: Vec<CritStep>,
    breakdown: BTreeMap<Category, f64>,
}

impl<'a> Analyzer<'a> {
    fn get(&self, id: SpanId) -> Option<&'a Span> {
        let idx = id.0 as usize;
        if idx == 0 || idx > self.spans.len() {
            return None;
        }
        let s = &self.spans[idx - 1];
        (s.id == id).then_some(s)
    }

    fn contributors(&self, s: &Span) -> Vec<&'a Span> {
        let mut out: Vec<&Span> = Vec::new();
        if let Some(kids) = self.children.get(&s.id) {
            out.extend(kids.iter().filter_map(|&id| self.get(id)));
        }
        out.extend(s.links.iter().filter_map(|&id| self.get(id)));
        out
    }

    /// Attribute the window `[lo, hi)` of span `s`, walking backwards.
    fn attribute(&mut self, s: &'a Span, lo: f64, hi: f64) {
        let mut cur = hi;
        let contributors = self.contributors(s);
        while cur > lo + 1e-12 {
            // The contributor active latest before the cursor: maximal
            // clipped end, with deterministic tie-breaks.
            let best = contributors
                .iter()
                .filter(|c| {
                    let start = secs_of(c.start);
                    let end = secs_of(c.end_or_start());
                    start < cur && end.min(cur) > start && end > lo
                })
                .max_by(|a, b| {
                    let key = |c: &Span| {
                        (
                            secs_of(c.end_or_start()).min(cur),
                            secs_of(c.end_or_start()),
                            secs_of(c.start),
                        )
                    };
                    let (ka, kb) = (key(a), key(b));
                    ka.0.total_cmp(&kb.0)
                        .then(ka.1.total_cmp(&kb.1))
                        .then(ka.2.total_cmp(&kb.2))
                        .then(a.id.cmp(&b.id))
                })
                .copied();
            let Some(c) = best else {
                // No contributor covers any of [lo, cur): s itself owns it.
                self.push_step(s, lo, cur);
                cur = lo;
                break;
            };
            let c_start = secs_of(c.start).max(lo);
            let c_end = secs_of(c.end_or_start()).min(cur);
            if c_end < cur {
                // Gap after the contributor finished: the enclosing span
                // was "doing" whatever its own category says.
                self.push_step(s, c_end, cur);
            }
            self.attribute(c, c_start, c_end);
            cur = c_start;
        }
        let _ = cur;
    }

    fn push_step(&mut self, s: &Span, enter: f64, exit: f64) {
        if exit <= enter {
            return;
        }
        *self.breakdown.entry(s.category).or_insert(0.0) += exit - enter;
        self.steps.push(CritStep {
            span: s.id,
            name: s.name.clone(),
            component: s.component.clone(),
            category: s.category,
            enter_s: enter,
            exit_s: exit,
        });
    }
}

/// Analyze the critical path of `root` within `spans`.
///
/// Returns an empty default if `root` is unknown or zero-length.
pub fn critical_path(spans: &[Span], root: SpanId) -> CriticalPath {
    let mut children: BTreeMap<SpanId, Vec<SpanId>> = BTreeMap::new();
    for s in spans {
        if !s.parent.is_none() {
            children.entry(s.parent).or_default().push(s.id);
        }
    }
    let mut analyzer = Analyzer {
        spans,
        children,
        steps: Vec::new(),
        breakdown: BTreeMap::new(),
    };
    let Some(root_span) = analyzer.get(root) else {
        return CriticalPath::default();
    };
    let lo = secs_of(root_span.start);
    let hi = secs_of(root_span.end_or_start());
    if hi <= lo {
        return CriticalPath {
            root,
            root_name: root_span.name.clone(),
            ..CriticalPath::default()
        };
    }
    analyzer.attribute(root_span, lo, hi);
    analyzer.steps.reverse();
    CriticalPath {
        root,
        root_name: root_span.name.clone(),
        makespan_s: hi - lo,
        steps: analyzer.steps,
        breakdown: analyzer.breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanContext;
    use crate::Obs;
    use swf_simcore::{secs, sleep, Sim};

    fn span(id: u64, parent: u64, cat: Category, start: f64, end: f64, links: Vec<u64>) -> Span {
        Span {
            id: SpanId(id),
            parent: SpanId(parent),
            component: "p/t".into(),
            name: format!("s{id}"),
            category: cat,
            start: SimTime::ZERO + secs(start),
            end: Some(SimTime::ZERO + secs(end)),
            links: links.into_iter().map(SpanId).collect(),
        }
    }

    #[test]
    fn sequential_children_cover_everything() {
        // root [0,10) queue; children: compute [0,4), transfer [5,9).
        let spans = vec![
            span(1, 0, Category::Queue, 0.0, 10.0, vec![]),
            span(2, 1, Category::Compute, 0.0, 4.0, vec![]),
            span(3, 1, Category::Transfer, 5.0, 9.0, vec![]),
        ];
        let cp = critical_path(&spans, SpanId(1));
        assert!((cp.makespan_s - 10.0).abs() < 1e-9);
        assert!((cp.seconds(Category::Compute) - 4.0).abs() < 1e-9);
        assert!((cp.seconds(Category::Transfer) - 4.0).abs() < 1e-9);
        // Gaps [4,5) and [9,10) go to the root's own category.
        assert!((cp.seconds(Category::Queue) - 2.0).abs() < 1e-9);
        let total: f64 = cp.breakdown.values().sum();
        assert!(
            (total - cp.makespan_s).abs() < 1e-9,
            "breakdown sums to makespan"
        );
        // compute [0,4), gap [4,5), transfer [5,9), gap [9,10).
        assert_eq!(cp.steps.len(), 4);
        assert!(cp
            .steps
            .windows(2)
            .all(|w| w[0].exit_s <= w[1].enter_s + 1e-12));
    }

    #[test]
    fn parallel_children_follow_latest_finisher() {
        // Two overlapping children; the one finishing last wins its window.
        let spans = vec![
            span(1, 0, Category::Other, 0.0, 8.0, vec![]),
            span(2, 1, Category::Compute, 0.0, 8.0, vec![]),
            span(3, 1, Category::Transfer, 0.0, 5.0, vec![]),
        ];
        let cp = critical_path(&spans, SpanId(1));
        assert!((cp.seconds(Category::Compute) - 8.0).abs() < 1e-9);
        assert_eq!(cp.seconds(Category::Transfer), 0.0);
    }

    #[test]
    fn links_pull_in_other_subtrees() {
        // Activator wait [2,6) ColdStart links pod-start [1,5) whose child
        // pull [1,4) dominates; only the overlap is re-attributed.
        let mut wait = span(3, 0, Category::ColdStart, 2.0, 6.0, vec![1]);
        wait.links = vec![SpanId(1)];
        let spans = vec![
            span(1, 0, Category::ColdStart, 1.0, 5.0, vec![]),
            span(2, 1, Category::Pull, 1.0, 4.0, vec![]),
            wait,
        ];
        let cp = critical_path(&spans, SpanId(3));
        assert!((cp.makespan_s - 4.0).abs() < 1e-9);
        // [5,6) gap -> wait's ColdStart; [4,5) pod tail -> ColdStart; [2,4) -> Pull.
        assert!((cp.seconds(Category::Pull) - 2.0).abs() < 1e-9);
        assert!((cp.seconds(Category::ColdStart) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_length_spans_are_ignored() {
        let spans = vec![
            span(1, 0, Category::Other, 0.0, 2.0, vec![]),
            span(2, 1, Category::Compute, 1.0, 1.0, vec![]),
        ];
        let cp = critical_path(&spans, SpanId(1));
        assert!((cp.seconds(Category::Other) - 2.0).abs() < 1e-9);
        assert_eq!(cp.seconds(Category::Compute), 0.0);
    }

    #[test]
    fn unknown_root_is_empty() {
        let cp = critical_path(&[], SpanId(7));
        assert_eq!(cp.makespan_s, 0.0);
        assert!(cp.steps.is_empty());
    }

    #[test]
    fn collector_integration_breakdown_sums() {
        let obs = Obs::enabled();
        let sim = Sim::new();
        let h = obs.clone();
        sim.block_on(async move {
            let wf = h.span(
                SpanContext::NONE,
                "condor/dagman",
                "workflow:w0",
                Category::Queue,
            );
            sleep(secs(1.0)).await;
            let job = h.start_span(
                wf.ctx(),
                "condor/negotiator",
                "negotiate",
                Category::Negotiate,
            );
            sleep(secs(0.5)).await;
            h.end(job);
            let run = h.start_span(wf.ctx(), "node-0/startd", "compute", Category::Compute);
            sleep(secs(3.0)).await;
            h.end(run);
        });
        let spans = obs.spans();
        let roots = roots(&spans);
        assert_eq!(roots.len(), 1);
        let cp = critical_path(&spans, roots[0].id);
        assert!((cp.makespan_s - 4.5).abs() < 1e-9);
        assert!((cp.seconds(Category::Compute) - 3.0).abs() < 1e-9);
        assert!((cp.seconds(Category::Negotiate) - 0.5).abs() < 1e-9);
        assert!((cp.seconds(Category::Queue) - 1.0).abs() < 1e-9);
        let table = cp.render_breakdown();
        assert!(table.contains("compute"));
        assert!(table.contains("makespan"));
        assert!(!cp.render_chain().is_empty());
        assert!((cp.share(&[Category::Compute, Category::Negotiate]) - 3.5 / 4.5).abs() < 1e-9);
        let json = cp.to_json();
        assert_eq!(json["root_name"].as_str(), Some("workflow:w0"));
        assert_eq!(json["makespan_s"].as_f64(), Some(cp.makespan_s));
        assert_eq!(
            json["breakdown"]["compute"].as_f64(),
            Some(cp.seconds(Category::Compute))
        );
        assert_eq!(json["steps"].as_array().map(Vec::len), Some(cp.steps.len()));
        // The text form parses back identically — the drift check compares
        // these renderings byte-for-byte across runs.
        let back: serde_json::Value = serde_json::from_str(&json.to_string()).unwrap();
        assert_eq!(back.to_string(), json.to_string());
    }
}
