//! Span export/import: the `swf-spans/v1` JSON interchange format.
//!
//! Chrome-trace export ([`crate::chrome_trace`]) is lossy — it flattens
//! the span tree into begin/end event pairs for a viewer. This format
//! is the lossless one: every field of every [`Span`] round-trips, so
//! the `obsq` binary can query a file produced by a previous suite run
//! exactly as it would query a live collector, and golden tests can
//! check in a fixture trace.
//!
//! Shape:
//! ```json
//! {"format": "swf-spans/v1",
//!  "groups": [{"label": "fig1", "spans": [
//!     {"id": 1, "parent": 0, "component": "condor/dagman",
//!      "name": "workflow:wf-0", "category": "queue",
//!      "start_ns": 0, "end_ns": 1000000000, "links": []}, ..]}]}
//! ```

use swf_simcore::SimTime;

use crate::span::{Category, Span, SpanId};
use crate::Obs;

/// Format tag written into every export.
pub const SPANS_FORMAT: &str = "swf-spans/v1";

fn time_ns(t: SimTime) -> u64 {
    t.as_nanos()
}

fn span_to_json(span: &Span) -> serde_json::Value {
    let mut obj = serde_json::Map::new();
    obj.insert("id".to_string(), serde_json::Value::from(span.id.0));
    obj.insert("parent".to_string(), serde_json::Value::from(span.parent.0));
    obj.insert(
        "component".to_string(),
        serde_json::Value::from(span.component.clone()),
    );
    obj.insert(
        "name".to_string(),
        serde_json::Value::from(span.name.clone()),
    );
    obj.insert(
        "category".to_string(),
        serde_json::Value::from(span.category.label()),
    );
    obj.insert(
        "start_ns".to_string(),
        serde_json::Value::from(time_ns(span.start)),
    );
    obj.insert(
        "end_ns".to_string(),
        serde_json::Value::from(span.end.map(time_ns)),
    );
    obj.insert(
        "links".to_string(),
        serde_json::Value::Array(
            span.links
                .iter()
                .map(|l| serde_json::Value::from(l.0))
                .collect(),
        ),
    );
    serde_json::Value::Object(obj)
}

fn span_from_json(v: &serde_json::Value) -> Option<Span> {
    Some(Span {
        id: SpanId(v["id"].as_u64()?),
        parent: SpanId(v["parent"].as_u64().unwrap_or(0)),
        component: v["component"].as_str()?.to_string(),
        name: v["name"].as_str()?.to_string(),
        category: Category::from_label(v["category"].as_str()?)?,
        start: SimTime::from_nanos(v["start_ns"].as_u64()?),
        end: v["end_ns"].as_u64().map(SimTime::from_nanos),
        links: v["links"]
            .as_array()
            .map(|a| a.iter().filter_map(|l| l.as_u64().map(SpanId)).collect())
            .unwrap_or_default(),
    })
}

/// Export labelled collectors as one `swf-spans/v1` document (the
/// suite passes one group per scenario).
pub fn spans_to_json(groups: &[(&str, &Obs)]) -> serde_json::Value {
    let groups: Vec<serde_json::Value> = groups
        .iter()
        .map(|(label, obs)| {
            let mut obj = serde_json::Map::new();
            obj.insert("label".to_string(), serde_json::Value::from(*label));
            obj.insert(
                "spans".to_string(),
                serde_json::Value::Array(obs.spans().iter().map(span_to_json).collect()),
            );
            serde_json::Value::Object(obj)
        })
        .collect();
    let mut root = serde_json::Map::new();
    root.insert("format".to_string(), serde_json::Value::from(SPANS_FORMAT));
    root.insert("groups".to_string(), serde_json::Value::Array(groups));
    serde_json::Value::Object(root)
}

/// Parse a `swf-spans/v1` document back into labelled span lists.
/// Returns `None` when the format tag is missing/wrong or any span is
/// malformed (a truncated file should fail loudly, not half-parse).
pub fn spans_from_json(doc: &serde_json::Value) -> Option<Vec<(String, Vec<Span>)>> {
    if doc["format"].as_str() != Some(SPANS_FORMAT) {
        return None;
    }
    let mut out = Vec::new();
    for group in doc["groups"].as_array()? {
        let label = group["label"].as_str()?.to_string();
        let spans: Option<Vec<Span>> = group["spans"]
            .as_array()?
            .iter()
            .map(span_from_json)
            .collect();
        out.push((label, spans?));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanContext;
    use swf_simcore::{secs, sleep, Sim};

    #[test]
    fn export_roundtrips_losslessly() {
        let obs = Obs::enabled();
        let sim = Sim::new();
        let h = obs.clone();
        sim.block_on(async move {
            let root = h.span(
                SpanContext::NONE,
                "condor/dagman",
                "workflow:x",
                Category::Queue,
            );
            let open = h.start_span(root.ctx(), "knative/activator", "wait", Category::ColdStart);
            h.link_from(open, root.ctx());
            sleep(secs(1.5)).await;
            // `open` is left open on purpose: end=None must round-trip.
        });
        let original = obs.spans();
        let doc = spans_to_json(&[("t", &obs)]);
        let back = spans_from_json(&doc).expect("parse");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].0, "t");
        assert_eq!(back[0].1, original);
        assert!(back[0].1[1].end.is_none());
        assert_eq!(back[0].1[1].links, vec![original[0].id]);
    }

    #[test]
    fn bad_documents_are_rejected() {
        assert!(spans_from_json(&serde_json::json!({})).is_none());
        assert!(
            spans_from_json(&serde_json::json!({"format": "other/v1", "groups": []})).is_none()
        );
        let truncated = serde_json::json!({
            "format": SPANS_FORMAT,
            "groups": [{"label": "t", "spans": [{"id": 1}]}],
        });
        assert!(spans_from_json(&truncated).is_none());
    }
}
