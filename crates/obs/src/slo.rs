//! Service-level objectives over the telemetry registry.
//!
//! An [`SloSpec`] declares latency objectives (a histogram metric, a
//! percentile, a ceiling), a cold-start-rate ceiling, and a per-workflow
//! makespan ceiling; [`evaluate`] checks a finished run's
//! [`MetricsSnapshot`](crate::MetricsSnapshot) and span tree against it
//! and produces an [`SloReport`] — per-objective outcomes, per-workflow
//! outcomes, and an error-budget burn figure. Everything is a pure
//! function of the run's deterministic telemetry, so reports are
//! bitwise-reproducible and `suite compare` treats the benchmark
//! document's `slo` section exactly like `virtual`: any difference is
//! drift.

use crate::metrics::MetricsSnapshot;
use crate::span::Span;

/// A named percentile of a latency histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pctl {
    /// Median.
    P50,
    /// 90th percentile.
    P90,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
    /// 99.9th percentile.
    P999,
}

impl Pctl {
    /// Stable label (`p50`, …) for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Pctl::P50 => "p50",
            Pctl::P90 => "p90",
            Pctl::P95 => "p95",
            Pctl::P99 => "p99",
            Pctl::P999 => "p999",
        }
    }
}

/// One latency objective: `metric`'s `pctl` must stay at or below `max_s`.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyObjective {
    /// Histogram metric name (must be listed in `metrics.registry`).
    pub metric: String,
    /// Which percentile the ceiling applies to.
    pub pctl: Pctl,
    /// Ceiling in virtual seconds.
    pub max_s: f64,
}

/// A declarative SLO specification.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SloSpec {
    /// Latency objectives, in declaration order.
    pub objectives: Vec<LatencyObjective>,
    /// Ceiling on `knative.cold_starts / knative.invocations`.
    pub cold_start_rate_max: Option<f64>,
    /// Per-workflow makespan ceiling in virtual seconds.
    pub makespan_max_s: Option<f64>,
    /// Fraction of objectives allowed to be in violation before the
    /// error budget is burned (burn = violation rate / budget).
    pub error_budget: f64,
}

impl SloSpec {
    /// An empty spec with the default 10% error budget.
    pub fn new() -> SloSpec {
        SloSpec {
            error_budget: 0.10,
            ..SloSpec::default()
        }
    }

    /// Add a latency objective. The metric name is checked against
    /// `metrics.registry` by swf-tidy's M-rules.
    pub fn objective(mut self, metric: &str, pctl: Pctl, max_s: f64) -> SloSpec {
        self.objectives.push(LatencyObjective {
            metric: metric.to_string(),
            pctl,
            max_s,
        });
        self
    }

    /// Cap the cold-start rate (cold starts per invocation).
    pub fn cold_start_rate(mut self, max: f64) -> SloSpec {
        self.cold_start_rate_max = Some(max);
        self
    }

    /// Cap every workflow's makespan.
    pub fn makespan_max(mut self, max_s: f64) -> SloSpec {
        self.makespan_max_s = Some(max_s);
        self
    }

    /// Set the error budget (allowed objective-violation fraction).
    pub fn error_budget(mut self, budget: f64) -> SloSpec {
        self.error_budget = budget;
        self
    }

    /// The benchmark suite's default objectives: scheduler-path and
    /// serverless-path latency distributions (Li et al.'s concurrency /
    /// latency methodology; Wukong's scheduler-path motivation), sized
    /// for the paper-shaped quick scenarios.
    pub fn suite_default() -> SloSpec {
        SloSpec::new()
            .objective("condor.queue_wait_s", Pctl::P50, 15.0)
            .objective("condor.queue_wait_s", Pctl::P99, 90.0)
            .objective("condor.activation_s", Pctl::P99, 45.0)
            .objective("knative.cold_wait_s", Pctl::P99, 20.0)
            .objective("knative.request_s", Pctl::P50, 30.0)
            .objective("knative.request_s", Pctl::P99, 120.0)
            .cold_start_rate(0.50)
            .makespan_max(600.0)
            .error_budget(0.10)
    }

    /// Render as JSON (for the benchmark document's `slo.spec` field).
    pub fn to_json(&self) -> serde_json::Value {
        let objectives: Vec<serde_json::Value> = self
            .objectives
            .iter()
            .map(|o| {
                let mut obj = serde_json::Map::new();
                obj.insert(
                    "metric".to_string(),
                    serde_json::Value::from(o.metric.clone()),
                );
                obj.insert("pctl".to_string(), serde_json::Value::from(o.pctl.label()));
                obj.insert("max_s".to_string(), serde_json::Value::from(o.max_s));
                serde_json::Value::Object(obj)
            })
            .collect();
        let mut root = serde_json::Map::new();
        root.insert(
            "objectives".to_string(),
            serde_json::Value::Array(objectives),
        );
        root.insert(
            "cold_start_rate_max".to_string(),
            serde_json::Value::from(self.cold_start_rate_max),
        );
        root.insert(
            "makespan_max_s".to_string(),
            serde_json::Value::from(self.makespan_max_s),
        );
        root.insert(
            "error_budget".to_string(),
            serde_json::Value::from(self.error_budget),
        );
        serde_json::Value::Object(root)
    }
}

/// Outcome of one latency objective.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectiveOutcome {
    /// The objective evaluated.
    pub objective: LatencyObjective,
    /// Observed percentile value; `None` when the metric recorded
    /// nothing in this run (the objective is then vacuously met).
    pub observed_s: Option<f64>,
    /// Whether the objective held.
    pub ok: bool,
}

/// Outcome of the per-workflow makespan objective.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkflowOutcome {
    /// Workflow root-span name (e.g. `workflow:wf-3`).
    pub name: String,
    /// Makespan in virtual seconds.
    pub makespan_s: f64,
    /// Whether it met the makespan ceiling (true when no ceiling is set).
    pub ok: bool,
}

/// A finished run evaluated against an [`SloSpec`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SloReport {
    /// Per-objective outcomes, in spec order.
    pub objectives: Vec<ObjectiveOutcome>,
    /// Observed cold-start rate (cold starts / invocations), when the
    /// run made any invocations.
    pub cold_start_rate: Option<f64>,
    /// Whether the cold-start-rate ceiling held (true when unset/vacuous).
    pub cold_start_ok: bool,
    /// Per-workflow makespan outcomes (workflow root spans, id order).
    pub workflows: Vec<WorkflowOutcome>,
    /// Objectives evaluated against actual data (non-vacuous).
    pub evaluated: u64,
    /// Objectives violated.
    pub violated: u64,
    /// Error-budget burn: violation rate divided by the budget.
    /// `> 1.0` means the budget is blown.
    pub error_budget_burn: f64,
}

impl SloReport {
    /// True when every evaluated objective (and every workflow) held.
    pub fn ok(&self) -> bool {
        self.violated == 0 && self.cold_start_ok && self.workflows.iter().all(|w| w.ok)
    }

    /// Render as JSON (for the benchmark document's `slo` section).
    pub fn to_json(&self) -> serde_json::Value {
        let objectives: Vec<serde_json::Value> = self
            .objectives
            .iter()
            .map(|o| {
                let mut obj = serde_json::Map::new();
                obj.insert(
                    "metric".to_string(),
                    serde_json::Value::from(o.objective.metric.clone()),
                );
                obj.insert(
                    "pctl".to_string(),
                    serde_json::Value::from(o.objective.pctl.label()),
                );
                obj.insert(
                    "max_s".to_string(),
                    serde_json::Value::from(o.objective.max_s),
                );
                obj.insert(
                    "observed_s".to_string(),
                    serde_json::Value::from(o.observed_s),
                );
                obj.insert("ok".to_string(), serde_json::Value::from(o.ok));
                serde_json::Value::Object(obj)
            })
            .collect();
        let workflows: Vec<serde_json::Value> = self
            .workflows
            .iter()
            .map(|w| {
                let mut obj = serde_json::Map::new();
                obj.insert("name".to_string(), serde_json::Value::from(w.name.clone()));
                obj.insert(
                    "makespan_s".to_string(),
                    serde_json::Value::from(w.makespan_s),
                );
                obj.insert("ok".to_string(), serde_json::Value::from(w.ok));
                serde_json::Value::Object(obj)
            })
            .collect();
        let mut root = serde_json::Map::new();
        root.insert(
            "objectives".to_string(),
            serde_json::Value::Array(objectives),
        );
        root.insert(
            "cold_start_rate".to_string(),
            serde_json::Value::from(self.cold_start_rate),
        );
        root.insert(
            "cold_start_ok".to_string(),
            serde_json::Value::from(self.cold_start_ok),
        );
        root.insert("workflows".to_string(), serde_json::Value::Array(workflows));
        root.insert(
            "evaluated".to_string(),
            serde_json::Value::from(self.evaluated),
        );
        root.insert(
            "violated".to_string(),
            serde_json::Value::from(self.violated),
        );
        root.insert(
            "error_budget_burn".to_string(),
            serde_json::Value::from(self.error_budget_burn),
        );
        root.insert("ok".to_string(), serde_json::Value::from(self.ok()));
        serde_json::Value::Object(root)
    }
}

/// Evaluate a run's telemetry against a spec. Pure and deterministic:
/// the same snapshot and span tree always produce a bitwise-identical
/// report.
pub fn evaluate(spec: &SloSpec, snapshot: &MetricsSnapshot, spans: &[Span]) -> SloReport {
    let mut report = SloReport::default();
    for objective in &spec.objectives {
        let observed = snapshot
            .histogram(&objective.metric)
            .map(|h| h.at(objective.pctl));
        let ok = observed.is_none_or(|v| v <= objective.max_s);
        if observed.is_some() {
            report.evaluated += 1;
            if !ok {
                report.violated += 1;
            }
        }
        report.objectives.push(ObjectiveOutcome {
            objective: objective.clone(),
            observed_s: observed,
            ok,
        });
    }

    let invocations = snapshot.counter("knative.invocations").unwrap_or(0);
    report.cold_start_rate = (invocations > 0)
        .then(|| snapshot.counter("knative.cold_starts").unwrap_or(0) as f64 / invocations as f64);
    report.cold_start_ok = match (spec.cold_start_rate_max, report.cold_start_rate) {
        (Some(max), Some(rate)) => {
            report.evaluated += 1;
            if rate > max {
                report.violated += 1;
                false
            } else {
                true
            }
        }
        _ => true,
    };

    for root in crate::critpath::roots(spans) {
        if !root.name.starts_with("workflow:") {
            continue;
        }
        let makespan_s = root.duration_secs();
        let ok = spec.makespan_max_s.is_none_or(|max| makespan_s <= max);
        if spec.makespan_max_s.is_some() {
            report.evaluated += 1;
            if !ok {
                report.violated += 1;
            }
        }
        report.workflows.push(WorkflowOutcome {
            name: root.name.clone(),
            makespan_s,
            ok,
        });
    }

    report.error_budget_burn = if report.evaluated == 0 || spec.error_budget <= 0.0 {
        0.0
    } else {
        (report.violated as f64 / report.evaluated as f64) / spec.error_budget
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Category, SpanContext};
    use crate::Obs;
    use swf_simcore::{secs, sleep, Sim};

    fn sample_run() -> (MetricsSnapshot, Vec<Span>) {
        let obs = Obs::enabled();
        let sim = Sim::new();
        let h = obs.clone();
        sim.block_on(async move {
            let wf = h.span(
                SpanContext::NONE,
                "condor/dagman",
                "workflow:t",
                Category::Queue,
            );
            h.observe("test.lat_s", 1.0);
            h.observe("test.lat_s", 9.0);
            h.counter_add("knative.invocations", 10);
            h.counter_add("knative.cold_starts", 2);
            sleep(secs(50.0)).await;
            drop(wf);
        });
        (obs.metrics(), obs.spans())
    }

    #[test]
    fn objectives_evaluate_against_percentiles() {
        let (snap, spans) = sample_run();
        let spec = SloSpec::new()
            .objective("test.lat_s", Pctl::P50, 2.0)
            .objective("test.lat_s", Pctl::P99, 5.0) // violated: p99 ≈ 9
            .objective("test.absent_s", Pctl::P99, 1.0); // vacuous
        let r = evaluate(&spec, &snap, &spans);
        assert!(r.objectives[0].ok);
        assert!(!r.objectives[1].ok);
        assert!(r.objectives[2].ok && r.objectives[2].observed_s.is_none());
        assert_eq!(r.evaluated, 2);
        assert_eq!(r.violated, 1);
        assert!(!r.ok());
        // burn = (1/2) / 0.10 = 5.0
        assert!((r.error_budget_burn - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cold_start_rate_and_workflow_makespans() {
        let (snap, spans) = sample_run();
        let spec = SloSpec::new().cold_start_rate(0.5).makespan_max(60.0);
        let r = evaluate(&spec, &snap, &spans);
        assert_eq!(r.cold_start_rate, Some(0.2));
        assert!(r.cold_start_ok);
        assert_eq!(r.workflows.len(), 1);
        assert_eq!(r.workflows[0].name, "workflow:t");
        assert!((r.workflows[0].makespan_s - 50.0).abs() < 1e-9);
        assert!(r.ok());

        let tight = SloSpec::new().makespan_max(10.0);
        let r = evaluate(&tight, &snap, &spans);
        assert!(!r.ok());
        assert!(!r.workflows[0].ok);
    }

    #[test]
    fn report_json_shape_is_stable() {
        let (snap, spans) = sample_run();
        let spec = SloSpec::suite_default();
        let r = evaluate(&spec, &snap, &spans);
        let json = r.to_json();
        assert!(json["objectives"].as_array().is_some());
        assert_eq!(json["cold_start_rate"].as_f64(), Some(0.2));
        assert!(json["ok"].is_boolean());
        // Two evaluations of the same run are bitwise identical.
        let again = evaluate(&spec, &snap, &spans).to_json();
        assert_eq!(json.to_string(), again.to_string());
    }
}
