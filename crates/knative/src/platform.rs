//! Platform assembly: one call boots serving, autoscaling, pod servers and
//! routing on top of a running Kubernetes control plane.

use swf_cluster::{Cluster, NodeId, Request, Response};
use swf_container::ResourceLimits;
use swf_k8s::Store;
use swf_simcore::{spawn, SimDuration};

use crate::autoscaler::Autoscaler;
use crate::config::KnativeConfig;
use crate::error::KnativeError;
use crate::handlers::{Handler, HandlerRegistry};
use crate::ksvc::{KService, Revision};
use crate::metrics::MetricHub;
use crate::pod_server::PodServers;
use crate::router::{Router, RouterConfig};
use crate::serving::ServingController;

/// A running Knative platform.
#[derive(Clone)]
pub struct Knative {
    ksvcs: Store<KService>,
    revisions: Store<Revision>,
    handlers: HandlerRegistry,
    hub: MetricHub,
    router: Router,
    k8s: swf_k8s::K8s,
}

impl Knative {
    /// Boot the platform over `k8s`, spawning all control loops.
    pub fn start(cluster: &Cluster, k8s: swf_k8s::K8s, config: KnativeConfig) -> Knative {
        let ksvcs: Store<KService> = Store::new();
        let revisions: Store<Revision> = Store::new();
        let handlers = HandlerRegistry::new();
        let hub = MetricHub::new();
        spawn(ServingController::new(ksvcs.clone(), revisions.clone(), k8s.clone(), config).run());
        spawn(
            Autoscaler::new(
                revisions.clone(),
                k8s.clone(),
                hub.clone(),
                config.autoscaler,
            )
            .run(),
        );
        spawn(
            PodServers::new(
                k8s.clone(),
                cluster.http().clone(),
                revisions.clone(),
                handlers.clone(),
                hub.clone(),
                config.data_plane,
            )
            .run(),
        );
        let router = Router::new(
            k8s.clone(),
            cluster.http().clone(),
            revisions.clone(),
            hub.clone(),
            config.data_plane,
            RouterConfig {
                policy: config.routing,
                retry: config.invoke_retry,
                attempt_timeout: config.attempt_timeout,
                seed: config.seed,
                breaker: config.breaker,
                ..RouterConfig::default()
            },
        );
        Knative {
            ksvcs,
            revisions,
            handlers,
            hub,
            router,
            k8s,
        }
    }

    /// Register a KService together with its function handler — the paper's
    /// pre-execution registration step ("task registration with the
    /// serverless system was done manually before the execution").
    pub fn register(&self, ksvc: KService, handler: Handler) {
        self.handlers.register(&ksvc.meta.name, handler);
        self.ksvcs.put(ksvc.meta.name.clone(), ksvc);
    }

    /// Register with a plain closure handler.
    pub fn register_fn(
        &self,
        ksvc: KService,
        f: impl Fn(&Request) -> swf_container::Workload + 'static,
    ) {
        self.handlers.register_fn(&ksvc.meta.name, f);
        self.ksvcs.put(ksvc.meta.name.clone(), ksvc);
    }

    /// Remove a KService (its revision, deployment and pods cascade away).
    pub fn unregister(&self, service: &str) {
        self.ksvcs.delete(service);
    }

    /// Synchronously invoke a function from `from`.
    pub async fn invoke(
        &self,
        from: NodeId,
        service: &str,
        request: Request,
    ) -> Result<Response, KnativeError> {
        self.router.invoke(from, service, request).await
    }

    /// Wait until the service has at least `n` ready pods (also waits for
    /// the serving controller to materialize the revision first).
    pub async fn wait_ready(
        &self,
        service: &str,
        n: usize,
        deadline: SimDuration,
    ) -> Result<(), KnativeError> {
        let rev_name = format!("{service}-00001");
        let revisions = self.revisions.clone();
        let wait_rev = async {
            let mut w = revisions.watch();
            loop {
                if let Some(rev) = revisions.get(&rev_name) {
                    return rev;
                }
                w.changed().await;
            }
        };
        let rev = match swf_simcore::timeout(deadline, wait_rev).await {
            Ok(rev) => rev,
            Err(_) => return Err(KnativeError::ServiceNotFound(service.to_string())),
        };
        self.k8s
            .wait_endpoints(&rev.k8s_service_name(), n, deadline)
            .await
            .map_err(Into::into)
    }

    /// Current ready pod count of a service.
    pub fn ready_pods(&self, service: &str) -> usize {
        self.revisions
            .get(&format!("{service}-00001"))
            .and_then(|rev| self.k8s.api().endpoints().get(&rev.k8s_service_name()))
            .map(|e| e.ready.len())
            .unwrap_or(0)
    }

    /// The metric hub (demand accounting).
    pub fn metrics(&self) -> &MetricHub {
        &self.hub
    }

    /// The circuit breaker guarding a revision (created on first use).
    pub fn breaker(&self, revision: &str) -> std::rc::Rc<crate::breaker::CircuitBreaker> {
        self.router.breaker(revision)
    }

    /// The revision store.
    pub fn revisions(&self) -> &Store<Revision> {
        &self.revisions
    }

    /// The underlying orchestrator handle.
    pub fn k8s(&self) -> &swf_k8s::K8s {
        &self.k8s
    }

    /// Default resource shape for the paper's matmul function pods.
    pub fn default_function_resources() -> ResourceLimits {
        ResourceLimits::one_core(512)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use swf_cluster::ClusterConfig;
    use swf_container::{Image, ImageRef, Registry, RegistryConfig, Workload};
    use swf_k8s::{K8s, K8sConfig};
    use swf_simcore::{now, secs, Sim};

    fn boot() -> (Cluster, Knative, ImageRef) {
        boot_with(KnativeConfig::default())
    }

    fn boot_with(config: KnativeConfig) -> (Cluster, Knative, ImageRef) {
        let cluster = Cluster::new(&ClusterConfig::default());
        let registry = Registry::new(RegistryConfig::default());
        let image = ImageRef::parse("hpc/matmul:1.0");
        registry.push(Image::python_scientific(image.clone(), 1));
        let k8s = K8s::start(&cluster, registry, K8sConfig::default(), 11);
        let kn = Knative::start(&cluster, k8s, config);
        (cluster, kn, image)
    }

    fn echo_service(kn: &Knative, image: &ImageRef, name: &str, ksvc: KService) {
        let _ = name;
        kn.register_fn(ksvc, |req| {
            let body = req.body.clone();
            Workload::new(secs(0.458), move || Ok(body))
        });
        let _ = image;
    }

    #[test]
    fn cold_start_is_near_paper_value() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, kn, image) = boot();
            // Deferred provisioning: initial-scale 0, image pre-cached on
            // workers so the cold start excludes the pull (paper's §III-B
            // measurement: container structure exists, cold start 1.48 s).
            for n in kn.k8s().schedulable_nodes() {
                kn.k8s().registry().pull(n, &image).await.unwrap();
            }
            echo_service(
                &kn,
                &image,
                "matmul",
                KService::new("matmul", image.clone()).with_initial_scale(0),
            );
            swf_simcore::sleep(secs(1.0)).await;
            assert_eq!(kn.ready_pods("matmul"), 0);
            let t0 = now();
            let resp = kn
                .invoke(
                    NodeId(0),
                    "matmul",
                    Request::post("/", Bytes::from_static(b"x")),
                )
                .await
                .unwrap();
            assert!(resp.is_success());
            let elapsed = (now() - t0).as_secs_f64();
            // Cold start + compute: 1.48 + 0.458 ≈ 1.94; allow ±15%.
            let cold = elapsed - 0.458;
            assert!(
                (cold - 1.48).abs() < 0.22,
                "cold start {cold:.3}s (total {elapsed:.3}s)"
            );
        });
    }

    #[test]
    fn warm_invocations_reuse_the_container() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, kn, image) = boot();
            echo_service(
                &kn,
                &image,
                "matmul",
                KService::new("matmul", image.clone()).with_min_scale(1),
            );
            kn.wait_ready("matmul", 1, secs(300.0)).await.unwrap();
            let t0 = now();
            for i in 0..10u8 {
                let resp = kn
                    .invoke(
                        NodeId(0),
                        "matmul",
                        Request::post("/", Bytes::from(vec![i])),
                    )
                    .await
                    .unwrap();
                assert_eq!(&resp.body[..], &[i]);
            }
            let per_task = (now() - t0).as_secs_f64() / 10.0;
            // Warm per-task ≈ compute + ~0.02 s (Fig. 1 calibration).
            assert!((per_task - 0.478).abs() < 0.02, "per task {per_task:.3}");
            // One container total, reused for all ten tasks.
            let created: u64 = kn
                .k8s()
                .schedulable_nodes()
                .iter()
                .map(|n| kn.k8s().runtime(*n).unwrap().created_total())
                .sum();
            assert_eq!(created, 1);
        });
    }

    #[test]
    fn min_scale_prestages_images_on_distinct_nodes() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, kn, image) = boot();
            echo_service(
                &kn,
                &image,
                "matmul",
                KService::new("matmul", image.clone()).with_min_scale(3),
            );
            kn.wait_ready("matmul", 3, secs(600.0)).await.unwrap();
            // All three workers now cache the image (paper: min-scale "
            // specifies the number of worker nodes that should download the
            // container ahead of time").
            let mut nodes_with_image = 0;
            for n in kn.k8s().schedulable_nodes() {
                if kn.k8s().registry().is_cached(n, &image) {
                    nodes_with_image += 1;
                }
            }
            assert_eq!(nodes_with_image, 3);
        });
    }

    #[test]
    fn burst_scales_out_and_completes() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, kn, image) = boot();
            kn.register_fn(
                KService::new("matmul", image.clone())
                    .with_min_scale(1)
                    .with_container_concurrency(1),
                |req| {
                    let body = req.body.clone();
                    Workload::new(secs(1.0), move || Ok(body))
                },
            );
            kn.wait_ready("matmul", 1, secs(300.0)).await.unwrap();
            let handles: Vec<_> = (0..12u8)
                .map(|i| {
                    let kn = kn.clone();
                    swf_simcore::spawn(async move {
                        kn.invoke(
                            NodeId(0),
                            "matmul",
                            Request::post("/", Bytes::from(vec![i])),
                        )
                        .await
                        .unwrap()
                    })
                })
                .collect();
            let responses = swf_simcore::join_all(handles).await;
            assert!(responses.iter().all(|r| r.is_success()));
            // The burst forced scale-out beyond the single warm pod.
            assert!(kn.ready_pods("matmul") > 1);
        });
    }

    /// §IX-D task redirection: with LeastLoaded routing, requests steer
    /// away from a node whose cores are saturated by foreign work.
    #[test]
    fn least_loaded_routing_redirects_away_from_busy_nodes() {
        let sim = Sim::new();
        sim.block_on(async {
            let cluster = Cluster::new(&swf_cluster::ClusterConfig::default());
            let registry = Registry::new(RegistryConfig::default());
            let image = ImageRef::parse("hpc/matmul:1.0");
            registry.push(Image::python_scientific(image.clone(), 1));
            let k8s = K8s::start(&cluster, registry, K8sConfig::default(), 11);
            let kn = Knative::start(
                &cluster,
                k8s.clone(),
                KnativeConfig {
                    routing: crate::router::RoutingPolicy::LeastLoaded,
                    ..KnativeConfig::default()
                },
            );
            kn.register_fn(
                KService::new("fn", image)
                    .with_min_scale(2)
                    .with_max_scale(2),
                |req| {
                    let b = req.body.clone();
                    Workload::new(secs(0.2), move || Ok(b))
                },
            );
            kn.wait_ready("fn", 2, secs(600.0)).await.unwrap();
            let eps = {
                let rev = kn.revisions().get("fn-00001").unwrap();
                kn.k8s()
                    .api()
                    .endpoints()
                    .get(&rev.k8s_service_name())
                    .unwrap()
            };
            assert_eq!(eps.ready.len(), 2);
            let (busy_node, idle_node) = (eps.ready[0].node, eps.ready[1].node);
            // Saturate every core of the busy node with foreign work.
            let busy = kn.k8s().runtime(busy_node).unwrap().node().clone();
            let cores = busy.cores().capacity();
            for _ in 0..cores {
                let busy = busy.clone();
                swf_simcore::spawn(async move {
                    busy.run_on_core(secs(1000.0)).await;
                });
            }
            swf_simcore::sleep(secs(0.5)).await;
            // All requests should land on the idle node's pod.
            for i in 0..6u8 {
                kn.invoke(NodeId(0), "fn", Request::post("/", Bytes::from(vec![i])))
                    .await
                    .unwrap();
            }
            let idle_execs = kn.k8s().runtime(idle_node).unwrap().execs_total();
            let busy_execs = kn.k8s().runtime(busy_node).unwrap().execs_total();
            assert_eq!(idle_execs, 6, "redirection must prefer the idle node");
            assert_eq!(busy_execs, 0);
        });
    }

    /// An attempt that outlives `attempt_timeout` is retried with backoff
    /// and succeeds once the function behaves — and the whole schedule is
    /// bitwise reproducible.
    #[test]
    fn attempt_timeout_retries_then_succeeds_deterministically() {
        use std::cell::Cell;
        use std::rc::Rc;
        let run = || {
            let sim = Sim::new();
            sim.block_on(async {
                let (_cluster, kn, image) = boot_with(KnativeConfig {
                    invoke_retry: swf_simcore::RetryPolicy::exponential(6, secs(0.5), secs(4.0)),
                    attempt_timeout: Some(secs(1.0)),
                    ..KnativeConfig::default()
                });
                let calls = Rc::new(Cell::new(0u32));
                let calls2 = Rc::clone(&calls);
                kn.register_fn(
                    KService::new("matmul", image.clone()).with_min_scale(1),
                    move |req| {
                        let body = req.body.clone();
                        let n = calls2.get() + 1;
                        calls2.set(n);
                        // First attempt hangs past the deadline; later
                        // attempts answer promptly.
                        let d = if n == 1 { secs(30.0) } else { secs(0.1) };
                        Workload::new(d, move || Ok(body))
                    },
                );
                kn.wait_ready("matmul", 1, secs(300.0)).await.unwrap();
                let t0 = now();
                let resp = kn
                    .invoke(
                        NodeId(0),
                        "matmul",
                        Request::post("/", Bytes::from_static(b"x")),
                    )
                    .await
                    .unwrap();
                assert!(resp.is_success());
                assert!(calls.get() >= 2, "the slow first attempt was retried");
                let elapsed = (now() - t0).as_secs_f64();
                // At least one 1 s deadline plus the 0.5 s backoff passed.
                assert!(elapsed >= 1.5, "elapsed {elapsed:.3}s");
                elapsed
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.to_bits(), b.to_bits(), "retry timing must replay bitwise");
    }

    /// When every attempt times out the router returns the typed
    /// `RetriesExhausted` error — it never panics and never hangs.
    #[test]
    fn exhausted_retries_surface_a_typed_error() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, kn, image) = boot_with(KnativeConfig {
                invoke_retry: swf_simcore::RetryPolicy::exponential(3, secs(0.25), secs(1.0)),
                attempt_timeout: Some(secs(0.5)),
                ..KnativeConfig::default()
            });
            kn.register_fn(
                KService::new("matmul", image.clone()).with_min_scale(1),
                |req| {
                    let body = req.body.clone();
                    Workload::new(secs(60.0), move || Ok(body))
                },
            );
            kn.wait_ready("matmul", 1, secs(300.0)).await.unwrap();
            let err = kn
                .invoke(
                    NodeId(0),
                    "matmul",
                    Request::post("/", Bytes::from_static(b"x")),
                )
                .await
                .unwrap_err();
            match err {
                KnativeError::RetriesExhausted {
                    service, attempts, ..
                } => {
                    assert_eq!(service, "matmul");
                    assert_eq!(attempts, 3);
                }
                other => panic!("expected RetriesExhausted, got {other}"),
            }
        });
    }

    /// Crash the function pod's container: the liveness probe restarts it
    /// in place, the router's retries ride through the outage, and the
    /// invocation still succeeds — end-to-end self-healing.
    #[test]
    fn probe_heals_a_crashed_pod_and_invocations_recover() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, kn, image) = boot_with(KnativeConfig {
                pod_probe: Some(swf_k8s::ProbeSpec {
                    period: secs(1.0),
                    unready_threshold: 1,
                    failure_threshold: 2,
                }),
                invoke_retry: swf_simcore::RetryPolicy::exponential(12, secs(0.5), secs(4.0)),
                attempt_timeout: Some(secs(5.0)),
                ..KnativeConfig::default()
            });
            echo_service(
                &kn,
                &image,
                "matmul",
                KService::new("matmul", image.clone()).with_min_scale(1),
            );
            kn.wait_ready("matmul", 1, secs(300.0)).await.unwrap();
            let resp = kn
                .invoke(
                    NodeId(0),
                    "matmul",
                    Request::post("/", Bytes::from_static(b"a")),
                )
                .await
                .unwrap();
            assert!(resp.is_success());
            // Kill the backing container out from under the pod.
            let pod = kn
                .k8s()
                .api()
                .pods()
                .filter(|p| p.status.container.is_some())
                .into_iter()
                .next()
                .unwrap();
            let node = pod.status.node.unwrap();
            kn.k8s()
                .runtime(node)
                .unwrap()
                .crash(pod.status.container.unwrap())
                .unwrap();
            let resp = kn
                .invoke(
                    NodeId(0),
                    "matmul",
                    Request::post("/", Bytes::from_static(b"b")),
                )
                .await
                .unwrap();
            assert!(resp.is_success());
            assert_eq!(&resp.body[..], b"b");
            let healed = kn.k8s().api().pods().get(&pod.meta.name).unwrap();
            assert_eq!(healed.status.restart_count, 1);
        });
    }

    /// A bounded queue-proxy sheds overflow with typed 503s, which the
    /// router surfaces as the typed `Overloaded` error once retries are
    /// spent — while admitted requests still complete.
    #[test]
    fn queue_depth_sheds_overflow_with_typed_overloaded() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, kn, image) = boot_with(KnativeConfig {
                data_plane: crate::config::DataPlaneConfig {
                    queue_depth: 1,
                    ..crate::config::DataPlaneConfig::default()
                },
                ..KnativeConfig::default()
            });
            kn.register_fn(
                KService::new("slow", image.clone())
                    .with_min_scale(1)
                    .with_max_scale(1)
                    .with_container_concurrency(1),
                |req| {
                    let body = req.body.clone();
                    Workload::new(secs(5.0), move || Ok(body))
                },
            );
            kn.wait_ready("slow", 1, secs(300.0)).await.unwrap();
            let handles: Vec<_> = (0..6u8)
                .map(|i| {
                    let kn = kn.clone();
                    swf_simcore::spawn(async move {
                        kn.invoke(NodeId(0), "slow", Request::post("/", Bytes::from(vec![i])))
                            .await
                    })
                })
                .collect();
            let results = swf_simcore::join_all(handles).await;
            let ok = results.iter().filter(|r| r.is_ok()).count();
            let overloaded = results
                .iter()
                .filter(|r| matches!(r, Err(KnativeError::Overloaded { .. })))
                .count();
            // Capacity is cc 1 + queue 1 = 2; the other four exhaust their
            // immediate retries against 503s.
            assert_eq!(ok, 2, "admitted requests must complete");
            assert_eq!(overloaded, 4, "overflow must surface as Overloaded");
        });
    }

    /// With the breaker enabled, sustained 503s trip the circuit: later
    /// attempts fast-fail without touching the network.
    #[test]
    fn sustained_overload_trips_the_breaker() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, kn, image) = boot_with(KnativeConfig {
                data_plane: crate::config::DataPlaneConfig {
                    queue_depth: 1,
                    ..crate::config::DataPlaneConfig::default()
                },
                breaker: crate::breaker::BreakerConfig::enabled(3, secs(8.0)),
                ..KnativeConfig::default()
            });
            kn.register_fn(
                KService::new("slow", image.clone())
                    .with_min_scale(1)
                    .with_max_scale(1)
                    .with_container_concurrency(1),
                |req| {
                    let body = req.body.clone();
                    Workload::new(secs(30.0), move || Ok(body))
                },
            );
            kn.wait_ready("slow", 1, secs(300.0)).await.unwrap();
            // Saturate: 2 admitted (cc+queue), the rest shed 503s that trip
            // the breaker after 3 consecutive failures.
            let handles: Vec<_> = (0..8u8)
                .map(|i| {
                    let kn = kn.clone();
                    swf_simcore::spawn(async move {
                        kn.invoke(NodeId(0), "slow", Request::post("/", Bytes::from(vec![i])))
                            .await
                    })
                })
                .collect();
            let results = swf_simcore::join_all(handles).await;
            assert!(results
                .iter()
                .any(|r| matches!(r, Err(KnativeError::Overloaded { .. }))));
            let b = kn.breaker("slow-00001");
            assert!(b.trips() >= 1, "breaker must have tripped");
            assert_ne!(b.state(), crate::breaker::BreakerState::Closed);
        });
    }

    #[test]
    fn unknown_service_errors() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, kn, _image) = boot();
            let err = kn
                .invoke(NodeId(0), "ghost", Request::get("/"))
                .await
                .unwrap_err();
            assert!(matches!(err, KnativeError::ServiceNotFound(_)));
        });
    }

    #[test]
    fn function_failure_propagates() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, kn, image) = boot();
            kn.register_fn(
                KService::new("bad", image.clone()).with_min_scale(1),
                |_req| Workload::new(secs(0.01), || Err("numerical blowup".into())),
            );
            kn.wait_ready("bad", 1, secs(300.0)).await.unwrap();
            let err = kn
                .invoke(NodeId(0), "bad", Request::get("/"))
                .await
                .unwrap_err();
            assert!(matches!(err, KnativeError::FunctionFailed(_)));
        });
    }
}
