//! The Knative Pod Autoscaler (KPA).
//!
//! Every tick it scrapes per-revision concurrency averages over the stable
//! and panic windows and reconciles the backing Deployment's replica count:
//! `desired = ceil(avg / target)`, floored by `min-scale`, capped by
//! `max-scale`, with panic-mode protection against scale-down during bursts
//! and a grace period before scale-to-zero.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use swf_k8s::Store;
use swf_simcore::{now, sleep, SimTime};

use crate::config::AutoscalerConfig;
use crate::ksvc::Revision;
use crate::metrics::MetricHub;

/// One scaling decision (exposed for tests/ablations).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleDecision {
    /// Average concurrency over the stable window.
    pub stable: f64,
    /// Average concurrency over the panic window.
    pub panic: f64,
    /// Whether panic mode was active.
    pub panicking: bool,
    /// Replica count chosen.
    pub desired: u32,
}

/// The autoscaler control loop.
pub struct Autoscaler {
    revisions: Store<Revision>,
    k8s: swf_k8s::K8s,
    hub: MetricHub,
    config: AutoscalerConfig,
    /// Last instant each revision had nonzero demand.
    last_active: Rc<RefCell<BTreeMap<String, SimTime>>>,
}

impl Autoscaler {
    /// New autoscaler.
    pub fn new(
        revisions: Store<Revision>,
        k8s: swf_k8s::K8s,
        hub: MetricHub,
        config: AutoscalerConfig,
    ) -> Self {
        Autoscaler {
            revisions,
            k8s,
            hub,
            config,
            last_active: Rc::new(RefCell::new(BTreeMap::new())),
        }
    }

    /// Run forever, ticking at the configured interval.
    pub async fn run(self) {
        loop {
            self.tick().await;
            sleep(self.config.tick).await;
        }
    }

    /// One scaling pass over every revision.
    pub async fn tick(&self) {
        for (rev_name, rev) in self.revisions.entries() {
            let decision = self.decide(&rev_name, &rev);
            let dep_name = rev.deployment_name();
            let current = self
                .k8s
                .api()
                .deployments()
                .get(&dep_name)
                .map(|d| d.replicas);
            if let Some(current) = current {
                if current != decision.desired {
                    let _ = self
                        .k8s
                        .api()
                        .scale_deployment(&dep_name, decision.desired)
                        .await;
                }
            }
        }
    }

    /// Compute the decision for one revision (pure given metrics state).
    pub fn decide(&self, rev_name: &str, rev: &Revision) -> ScaleDecision {
        let stable = self
            .hub
            .average_concurrency(rev_name, self.config.stable_window);
        let panic = self
            .hub
            .average_concurrency(rev_name, self.config.panic_window);
        let instant = self.hub.concurrency(rev_name);
        let target = rev.target.max(0.01);

        let current = self
            .k8s
            .api()
            .deployments()
            .get(&rev.deployment_name())
            .map(|d| d.replicas)
            .unwrap_or(0);

        let desired_stable = (stable / target).ceil() as u32;
        let desired_panic = (panic / target).ceil() as u32;

        // Panic when short-window demand is ≥ threshold × current capacity.
        let capacity = (current as f64) * target;
        let panicking = current > 0 && panic >= self.config.panic_threshold * capacity.max(target);
        let mut desired = if panicking {
            // Never scale down while panicking.
            desired_panic.max(current)
        } else {
            desired_stable
        };

        // Immediate demand keeps at least one pod even before averages move.
        if instant > 0.0 {
            desired = desired.max(1);
        }

        // Scale-to-zero grace: hold the last pod until demand has been zero
        // for the grace window.
        if instant > 0.0 || stable > 0.0 {
            self.last_active
                .borrow_mut()
                .insert(rev_name.to_string(), now());
        }
        if desired == 0 && current > 0 {
            let last = self
                .last_active
                .borrow()
                .get(rev_name)
                .copied()
                .unwrap_or(SimTime::ZERO);
            if now().since(last) < self.config.scale_to_zero_grace {
                desired = 1;
            }
        }

        desired = desired.max(rev.min_scale);
        if rev.max_scale > 0 {
            desired = desired.min(rev.max_scale);
        }
        if self.config.max_scale > 0 {
            desired = desired.min(self.config.max_scale);
        }

        ScaleDecision {
            stable,
            panic,
            panicking,
            desired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_cluster::{Cluster, ClusterConfig};
    use swf_container::{Image, ImageRef, Registry, RegistryConfig};
    use swf_k8s::{K8s, K8sConfig};
    use swf_simcore::{secs, spawn, Sim};

    struct Rig {
        k8s: K8s,
        revisions: Store<Revision>,
        hub: MetricHub,
    }

    fn rig(min_scale: u32, cc_target: f64) -> Rig {
        let cluster = Cluster::new(&ClusterConfig::default());
        let registry = Registry::new(RegistryConfig::default());
        let image = ImageRef::parse("fn:v1");
        registry.push(Image::python_scientific(image.clone(), 1));
        let k8s = K8s::start(&cluster, registry, K8sConfig::default(), 5);
        let ksvcs: Store<crate::ksvc::KService> = Store::new();
        let revisions: Store<Revision> = Store::new();
        let hub = MetricHub::new();
        let config = crate::config::KnativeConfig::default();
        spawn(
            crate::serving::ServingController::new(
                ksvcs.clone(),
                revisions.clone(),
                k8s.clone(),
                config,
            )
            .run(),
        );
        let autoscaler_cfg = AutoscalerConfig {
            stable_window: secs(10.0),
            panic_window: secs(2.0),
            scale_to_zero_grace: secs(5.0),
            ..AutoscalerConfig::default()
        };
        spawn(Autoscaler::new(revisions.clone(), k8s.clone(), hub.clone(), autoscaler_cfg).run());
        let ksvc = crate::ksvc::KService::new("fn", image)
            .with_min_scale(min_scale)
            .with_initial_scale(min_scale)
            .with_target(cc_target);
        ksvcs.put("fn", ksvc);
        Rig {
            k8s,
            revisions,
            hub,
        }
    }

    fn replicas(rig: &Rig) -> u32 {
        rig.k8s
            .api()
            .deployments()
            .get("fn-00001-deployment")
            .map(|d| d.replicas)
            .unwrap_or(u32::MAX)
    }

    #[test]
    fn scales_up_under_sustained_concurrency() {
        let sim = Sim::new();
        sim.block_on(async {
            let rig = rig(0, 1.0);
            swf_simcore::sleep(secs(1.0)).await;
            assert!(rig.revisions.contains("fn-00001"));
            // Hold 4 concurrent requests for a while.
            let guards: Vec<_> = (0..4).map(|_| rig.hub.start_request("fn-00001")).collect();
            swf_simcore::sleep(secs(15.0)).await;
            assert!(replicas(&rig) >= 4, "replicas {}", replicas(&rig));
            drop(guards);
        });
    }

    #[test]
    fn scales_to_zero_after_grace() {
        let sim = Sim::new();
        sim.block_on(async {
            let rig = rig(0, 1.0);
            swf_simcore::sleep(secs(1.0)).await;
            {
                let _g = rig.hub.start_request("fn-00001");
                swf_simcore::sleep(secs(2.0)).await;
            }
            // Demand gone; within grace the pod stays.
            swf_simcore::sleep(secs(3.0)).await;
            assert!(replicas(&rig) >= 1);
            // Well past grace + stable window: scaled to zero.
            swf_simcore::sleep(secs(30.0)).await;
            assert_eq!(replicas(&rig), 0);
        });
    }

    #[test]
    fn min_scale_floors_replicas() {
        let sim = Sim::new();
        sim.block_on(async {
            let rig = rig(3, 1.0);
            swf_simcore::sleep(secs(40.0)).await;
            // No traffic at all, but min-scale holds 3 pods.
            assert_eq!(replicas(&rig), 3);
        });
    }

    #[test]
    fn higher_target_needs_fewer_pods() {
        let sim = Sim::new();
        sim.block_on(async {
            let rig = rig(0, 4.0);
            swf_simcore::sleep(secs(1.0)).await;
            let guards: Vec<_> = (0..8).map(|_| rig.hub.start_request("fn-00001")).collect();
            swf_simcore::sleep(secs(15.0)).await;
            let r = replicas(&rig);
            assert!((2..=3).contains(&r), "replicas {r}");
            drop(guards);
        });
    }
}
