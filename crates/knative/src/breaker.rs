//! Per-revision circuit breaker for the ingress router.
//!
//! Knative's activator and queue-proxy both carry *breakers* that stop
//! hammering a revision that keeps failing: after a run of consecutive
//! transport-level failures the circuit **opens** and requests fast-fail
//! without touching the network; once a virtual-time cooldown elapses the
//! circuit goes **half-open** and admits a bounded number of probe
//! requests — one success re-closes it, one failure re-opens it.
//!
//! The breaker sees *transport and overload* outcomes (connection resets,
//! 503s, attempt timeouts). Application-level 500s count as successes:
//! the revision answered, it is the function that is broken.
//!
//! The default config is disabled (`failure_threshold == 0`), so calm
//! runs execute the historical router path bit-for-bit.

use std::cell::Cell;

use swf_simcore::{millis, now, SimDuration, SimTime};

/// Circuit-breaker parameters.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive transport failures that open the circuit. `0` disables
    /// the breaker entirely (the default — no calm-path drift).
    pub failure_threshold: u32,
    /// How long an open circuit fast-fails before going half-open.
    pub cooldown: SimDuration,
    /// Probe requests admitted concurrently while half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 0,
            cooldown: SimDuration::from_secs(10),
            half_open_probes: 1,
        }
    }
}

impl BreakerConfig {
    /// An enabled breaker tripping after `failure_threshold` consecutive
    /// failures and cooling down for `cooldown`.
    pub fn enabled(failure_threshold: u32, cooldown: SimDuration) -> Self {
        BreakerConfig {
            failure_threshold,
            cooldown,
            half_open_probes: 1,
        }
    }

    /// True when the breaker never trips.
    pub fn is_disabled(&self) -> bool {
        self.failure_threshold == 0
    }
}

/// Breaker state, in the classic closed → open → half-open cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; counting consecutive failures.
    Closed,
    /// Fast-failing until the cooldown elapses.
    Open,
    /// Admitting limited probes to test recovery.
    HalfOpen,
}

/// An admitted request. Must be resolved with [`CircuitBreaker::record`]
/// (or [`CircuitBreaker::cancel`] if no attempt was actually made), so a
/// half-open probe slot is never leaked.
#[must_use = "resolve the permit via record() or cancel()"]
#[derive(Debug)]
pub struct Permit {
    probe: bool,
}

/// A per-revision circuit breaker on the virtual clock.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Cell<BreakerState>,
    consecutive_failures: Cell<u32>,
    open_until: Cell<SimTime>,
    probes_inflight: Cell<u32>,
    trips: Cell<u64>,
}

impl CircuitBreaker {
    /// New breaker, closed.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: Cell::new(BreakerState::Closed),
            consecutive_failures: Cell::new(0),
            open_until: Cell::new(SimTime::from_nanos(0)),
            probes_inflight: Cell::new(0),
            trips: Cell::new(0),
        }
    }

    /// Current state (open circuits report `HalfOpen` once cooled down).
    pub fn state(&self) -> BreakerState {
        self.refresh();
        self.state.get()
    }

    /// Times the circuit has opened.
    pub fn trips(&self) -> u64 {
        self.trips.get()
    }

    /// Ask to send a request. `Ok` carries a permit that must be resolved;
    /// `Err` carries the suggested wait before asking again.
    pub fn admit(&self) -> Result<Permit, SimDuration> {
        if self.config.is_disabled() {
            return Ok(Permit { probe: false });
        }
        self.refresh();
        match self.state.get() {
            BreakerState::Closed => Ok(Permit { probe: false }),
            BreakerState::Open => Err(self.open_until.get() - now()),
            BreakerState::HalfOpen => {
                if self.probes_inflight.get() < self.config.half_open_probes {
                    self.probes_inflight.set(self.probes_inflight.get() + 1);
                    Ok(Permit { probe: true })
                } else {
                    // Probe slots are taken; retry shortly.
                    Err(millis(100))
                }
            }
        }
    }

    /// Resolve a permit with the attempt's transport outcome.
    pub fn record(&self, permit: Permit, success: bool) {
        if self.config.is_disabled() {
            return;
        }
        if permit.probe {
            self.probes_inflight
                .set(self.probes_inflight.get().saturating_sub(1));
            if success {
                // Recovery confirmed.
                self.state.set(BreakerState::Closed);
                self.consecutive_failures.set(0);
            } else {
                self.trip();
            }
            return;
        }
        if success {
            self.consecutive_failures.set(0);
        } else {
            let n = self.consecutive_failures.get() + 1;
            self.consecutive_failures.set(n);
            if self.state.get() == BreakerState::Closed && n >= self.config.failure_threshold {
                self.trip();
            }
        }
    }

    /// Resolve a permit without an attempt having been made (e.g. the cold
    /// path was taken instead). Neutral: no state transition.
    pub fn cancel(&self, permit: Permit) {
        if permit.probe {
            self.probes_inflight
                .set(self.probes_inflight.get().saturating_sub(1));
        }
    }

    fn trip(&self) {
        self.state.set(BreakerState::Open);
        self.open_until.set(now() + self.config.cooldown);
        self.consecutive_failures.set(0);
        self.trips.set(self.trips.get() + 1);
        swf_obs::current().counter_add("knative.breaker_trips", 1);
    }

    /// Open → half-open once the cooldown elapsed.
    fn refresh(&self) {
        if self.state.get() == BreakerState::Open && now() >= self.open_until.get() {
            self.state.set(BreakerState::HalfOpen);
            self.probes_inflight.set(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::{secs, sleep, Sim};

    #[test]
    fn disabled_breaker_never_trips() {
        let sim = Sim::new();
        sim.block_on(async {
            let b = CircuitBreaker::new(BreakerConfig::default());
            for _ in 0..100 {
                let p = b.admit().unwrap();
                b.record(p, false);
            }
            assert_eq!(b.state(), BreakerState::Closed);
            assert_eq!(b.trips(), 0);
        });
    }

    #[test]
    fn consecutive_failures_open_then_cooldown_half_opens() {
        let sim = Sim::new();
        sim.block_on(async {
            let b = CircuitBreaker::new(BreakerConfig::enabled(3, secs(10.0)));
            // Two failures then a success: counter resets, still closed.
            for _ in 0..2 {
                let p = b.admit().unwrap();
                b.record(p, false);
            }
            let p = b.admit().unwrap();
            b.record(p, true);
            assert_eq!(b.state(), BreakerState::Closed);
            // Three straight failures trip it.
            for _ in 0..3 {
                let p = b.admit().unwrap();
                b.record(p, false);
            }
            assert_eq!(b.state(), BreakerState::Open);
            assert_eq!(b.trips(), 1);
            let wait = b.admit().unwrap_err();
            assert_eq!(wait, secs(10.0));
            // Cooldown elapses on the virtual clock.
            sleep(secs(10.0)).await;
            assert_eq!(b.state(), BreakerState::HalfOpen);
        });
    }

    #[test]
    fn half_open_probe_success_closes_failure_reopens() {
        let sim = Sim::new();
        sim.block_on(async {
            let b = CircuitBreaker::new(BreakerConfig::enabled(1, secs(5.0)));
            let p = b.admit().unwrap();
            b.record(p, false); // trips
            sleep(secs(5.0)).await;
            // Only one probe admitted while half-open.
            let probe = b.admit().unwrap();
            assert!(b.admit().is_err(), "second probe must be rejected");
            b.record(probe, false);
            assert_eq!(b.state(), BreakerState::Open);
            assert_eq!(b.trips(), 2);
            sleep(secs(5.0)).await;
            let probe = b.admit().unwrap();
            b.record(probe, true);
            assert_eq!(b.state(), BreakerState::Closed);
            // Closed again: normal admits flow.
            let p = b.admit().unwrap();
            b.record(p, true);
        });
    }

    #[test]
    fn cancel_releases_a_probe_slot() {
        let sim = Sim::new();
        sim.block_on(async {
            let b = CircuitBreaker::new(BreakerConfig::enabled(1, secs(1.0)));
            let p = b.admit().unwrap();
            b.record(p, false);
            sleep(secs(1.0)).await;
            let probe = b.admit().unwrap();
            assert!(b.admit().is_err());
            b.cancel(probe);
            // Slot released; a new probe is admitted and still half-open.
            let probe = b.admit().unwrap();
            assert_eq!(b.state(), BreakerState::HalfOpen);
            b.record(probe, true);
            assert_eq!(b.state(), BreakerState::Closed);
        });
    }
}
