//! Per-revision concurrency metrics feeding the autoscaler.
//!
//! The queue-proxy and the activator report in-flight request counts here;
//! the autoscaler scrapes a time-weighted average over its stable and panic
//! windows, exactly like Knative's metric pipeline (collapsed into one
//! in-process collector).

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use swf_simcore::{now, SimDuration, SimTime};

#[derive(Default)]
struct RevisionMetric {
    /// Requests currently being served by queue-proxies.
    in_flight: u64,
    /// Requests buffered at the activator (count toward demand).
    buffered: u64,
    /// (time, concurrency) samples pushed on every change + scrape.
    samples: VecDeque<(SimTime, f64)>,
    /// Lifetime counters.
    total_served: u64,
}

/// Shared metric collector.
#[derive(Clone, Default)]
pub struct MetricHub {
    revisions: Rc<RefCell<BTreeMap<String, RevisionMetric>>>,
}

/// RAII guard for one in-flight request.
pub struct InFlightGuard {
    hub: MetricHub,
    revision: String,
}

/// RAII guard for one activator-buffered request.
pub struct BufferedGuard {
    hub: MetricHub,
    revision: String,
}

impl MetricHub {
    /// New, empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    fn with<R>(&self, revision: &str, f: impl FnOnce(&mut RevisionMetric) -> R) -> R {
        let mut map = self.revisions.borrow_mut();
        let m = map.entry(revision.to_string()).or_default();
        f(m)
    }

    fn record_sample(m: &mut RevisionMetric) {
        let c = (m.in_flight + m.buffered) as f64;
        m.samples.push_back((now(), c));
        // Bound memory: keep ~10 minutes of samples.
        let horizon = now()
            .since(SimTime::ZERO)
            .saturating_sub(SimDuration::from_secs(600));
        while m
            .samples
            .front()
            .map(|(t, _)| t.since(SimTime::ZERO) < horizon)
            .unwrap_or(false)
        {
            m.samples.pop_front();
        }
    }

    /// Mark a request as being served; the guard decrements on drop.
    pub fn start_request(&self, revision: &str) -> InFlightGuard {
        self.with(revision, |m| {
            m.in_flight += 1;
            Self::record_sample(m);
        });
        InFlightGuard {
            hub: self.clone(),
            revision: revision.to_string(),
        }
    }

    /// Mark a request as buffered at the activator.
    pub fn buffer_request(&self, revision: &str) -> BufferedGuard {
        self.with(revision, |m| {
            m.buffered += 1;
            Self::record_sample(m);
        });
        BufferedGuard {
            hub: self.clone(),
            revision: revision.to_string(),
        }
    }

    /// Instantaneous concurrency (served + buffered).
    pub fn concurrency(&self, revision: &str) -> f64 {
        self.with(revision, |m| (m.in_flight + m.buffered) as f64)
    }

    /// Completed requests for a revision.
    pub fn total_served(&self, revision: &str) -> u64 {
        self.with(revision, |m| m.total_served)
    }

    /// Time-weighted average concurrency over the trailing `window`.
    /// Samples carry the concurrency *after* each change, so the value
    /// between two samples is the earlier sample's level.
    pub fn average_concurrency(&self, revision: &str, window: SimDuration) -> f64 {
        let end = now();
        let start_t = SimTime::from_nanos(end.as_nanos().saturating_sub(window.as_nanos()));
        self.with(revision, |m| {
            // Push a synthetic "now" sample so the integral covers the tail.
            Self::record_sample(m);
            let mut area = 0.0;
            let mut covered = 0.0;
            // Level before the first in-window sample: find the last sample
            // at or before start_t.
            let mut level_before = 0.0;
            for (t, c) in m.samples.iter() {
                if *t <= start_t {
                    level_before = *c;
                } else {
                    break;
                }
            }
            let mut prev_t = start_t;
            let mut prev_c = level_before;
            for (t, c) in m.samples.iter() {
                if *t <= start_t {
                    continue;
                }
                let dt = t.since(prev_t).as_secs_f64();
                area += prev_c * dt;
                covered += dt;
                prev_t = *t;
                prev_c = *c;
            }
            let dt = end.since(prev_t).as_secs_f64();
            area += prev_c * dt;
            covered += dt;
            if covered <= 0.0 {
                prev_c
            } else {
                area / window.as_secs_f64().max(covered)
            }
        })
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        // During Sim teardown leftover request futures are dropped outside
        // the run loop; skip the sample then (no virtual clock to read).
        let in_sim = swf_simcore::try_current().is_some();
        self.hub.with(&self.revision, |m| {
            m.in_flight = m.in_flight.saturating_sub(1);
            m.total_served += 1;
            if in_sim {
                MetricHub::record_sample(m);
            }
        });
    }
}

impl Drop for BufferedGuard {
    fn drop(&mut self) {
        let in_sim = swf_simcore::try_current().is_some();
        self.hub.with(&self.revision, |m| {
            m.buffered = m.buffered.saturating_sub(1);
            if in_sim {
                MetricHub::record_sample(m);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::{secs, sleep, Sim};

    #[test]
    fn in_flight_counts_and_guards() {
        let sim = Sim::new();
        sim.block_on(async {
            let hub = MetricHub::new();
            assert_eq!(hub.concurrency("r"), 0.0);
            let g1 = hub.start_request("r");
            let g2 = hub.start_request("r");
            assert_eq!(hub.concurrency("r"), 2.0);
            drop(g1);
            assert_eq!(hub.concurrency("r"), 1.0);
            drop(g2);
            assert_eq!(hub.concurrency("r"), 0.0);
            assert_eq!(hub.total_served("r"), 2);
        });
    }

    #[test]
    fn buffered_requests_count_toward_demand() {
        let sim = Sim::new();
        sim.block_on(async {
            let hub = MetricHub::new();
            let b = hub.buffer_request("r");
            assert_eq!(hub.concurrency("r"), 1.0);
            drop(b);
            assert_eq!(hub.concurrency("r"), 0.0);
            assert_eq!(hub.total_served("r"), 0); // buffering is not serving
        });
    }

    #[test]
    fn average_is_time_weighted() {
        let sim = Sim::new();
        sim.block_on(async {
            let hub = MetricHub::new();
            // 2 concurrent for 1s, then 0 for 1s → avg over 2s = 1.0.
            let g1 = hub.start_request("r");
            let g2 = hub.start_request("r");
            sleep(secs(1.0)).await;
            drop(g1);
            drop(g2);
            sleep(secs(1.0)).await;
            let avg = hub.average_concurrency("r", secs(2.0));
            assert!((avg - 1.0).abs() < 1e-9, "avg {avg}");
        });
    }

    #[test]
    fn average_over_partial_history_uses_covered_span() {
        let sim = Sim::new();
        sim.block_on(async {
            let hub = MetricHub::new();
            sleep(secs(1.0)).await;
            let _g = hub.start_request("r");
            sleep(secs(1.0)).await;
            // Window 60s but only ~2s of history; level was 1.0 for the
            // trailing second; with window normalization it stays small but
            // positive — what matters for scale-from-zero is > 0.
            let avg = hub.average_concurrency("r", secs(60.0));
            assert!(avg > 0.0);
            // Over exactly the active window the value is the true mean.
            let tight = hub.average_concurrency("r", secs(1.0));
            assert!((tight - 1.0).abs() < 1e-9, "tight {tight}");
        });
    }
}
