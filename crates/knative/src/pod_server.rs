//! Queue-proxy manager: one serving loop per ready revision pod.
//!
//! Each revision pod gets a queue-proxy task that binds the pod's HTTP port,
//! enforces `containerConcurrency` with a FIFO semaphore, reports in-flight
//! metrics to the autoscaler, and execs the function workload inside the
//! pod's container. This is where the paper's *container reuse* happens: one
//! container serves many requests without being recreated.

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::rc::Rc;

use swf_cluster::{HttpStack, Incoming, Response};
use swf_k8s::{Pod, Store};
use swf_simcore::sync::Semaphore;
use swf_simcore::{race, sleep, spawn, Either};

use crate::config::DataPlaneConfig;
use crate::handlers::HandlerRegistry;
use crate::ksvc::Revision;
use crate::metrics::MetricHub;

/// Watches revision pods and runs queue-proxies for them.
pub struct PodServers {
    k8s: swf_k8s::K8s,
    http: HttpStack,
    revisions: Store<Revision>,
    handlers: HandlerRegistry,
    hub: MetricHub,
    config: DataPlaneConfig,
    serving: Rc<RefCell<BTreeSet<String>>>,
}

impl PodServers {
    /// New manager.
    pub fn new(
        k8s: swf_k8s::K8s,
        http: HttpStack,
        revisions: Store<Revision>,
        handlers: HandlerRegistry,
        hub: MetricHub,
        config: DataPlaneConfig,
    ) -> Self {
        PodServers {
            k8s,
            http,
            revisions,
            handlers,
            hub,
            config,
            serving: Rc::new(RefCell::new(BTreeSet::new())),
        }
    }

    /// Run forever, attaching queue-proxies to newly ready pods.
    pub async fn run(self) {
        let rc = Rc::new(self);
        let mut watcher = rc.k8s.api().pods().watch();
        loop {
            rc.attach_new();
            watcher.changed().await;
        }
    }

    fn attach_new(self: &Rc<Self>) {
        let candidates: Vec<Pod> = self
            .k8s
            .api()
            .pods()
            .filter(|p| p.is_routable() && p.meta.labels.contains_key(Revision::pod_label()));
        for pod in candidates {
            let name = pod.meta.name.clone();
            if self.serving.borrow().contains(&name) {
                continue;
            }
            self.serving.borrow_mut().insert(name.clone());
            let this = Rc::clone(self);
            spawn(async move {
                this.queue_proxy(pod).await;
                this.serving.borrow_mut().remove(&name);
            });
        }
    }

    /// Serve one pod until it is deleted.
    async fn queue_proxy(self: &Rc<Self>, pod: Pod) {
        let Some(rev_name) = pod.meta.labels.get(Revision::pod_label()).cloned() else {
            return;
        };
        let Some(revision) = self.revisions.get(&rev_name) else {
            return;
        };
        let Some(node) = pod.status.node else {
            return;
        };
        let port = pod.status.port;
        if pod.status.container.is_none() {
            return;
        }
        let Some(runtime) = self.k8s.runtime(node).cloned() else {
            return;
        };
        let handler = self.handlers.get(&revision.service);
        let cc = if revision.container_concurrency == 0 {
            usize::MAX / 2
        } else {
            revision.container_concurrency as usize
        };
        let gate = Semaphore::new(cc);
        // The queue-proxy breaker: `cc` requests in service plus
        // `queue_depth` waiting; past that, new arrivals are shed with a
        // typed 503 instead of queueing unboundedly (queue_depth 0 keeps
        // the historical unbounded behaviour).
        let capacity = if self.config.queue_depth == 0 {
            usize::MAX / 2
        } else {
            cc.saturating_add(self.config.queue_depth as usize)
        };
        let pending = Rc::new(Cell::new(0usize));
        let mut rx = self.http.listen(node, port);
        let pod_name = pod.meta.name.clone();
        let mut pod_watch = self.k8s.api().pods().watch();
        loop {
            // Exit when the pod is deleted, marked for deletion, or failed
            // over by the node controller.
            let gone = self
                .k8s
                .api()
                .pods()
                .get(&pod_name)
                .map(|p| p.meta.deletion_requested || p.status.phase == swf_k8s::PodPhase::Failed)
                .unwrap_or(true);
            if gone {
                break;
            }
            match race(rx.recv(), pod_watch.changed()).await {
                Either::Left(Some(incoming)) => {
                    if pending.get() >= capacity {
                        swf_obs::current().counter_add("knative.queue_proxy_shed", 1);
                        incoming.respond(Response {
                            status: 503,
                            body: bytes::Bytes::from(format!(
                                "overloaded: queue-proxy at capacity {capacity}"
                            )),
                        });
                        continue;
                    }
                    pending.set(pending.get() + 1);
                    let pending = Rc::clone(&pending);
                    let this = Rc::clone(self);
                    let gate = gate.clone();
                    let runtime = runtime.clone();
                    let handler = handler.clone();
                    let rev_name = rev_name.clone();
                    let service = revision.service.clone();
                    let pod_name = pod_name.clone();
                    spawn(async move {
                        // Demand is reported at proxy ingress — queued
                        // requests count toward autoscaler concurrency,
                        // as in Knative's queue-proxy breaker.
                        let obs = swf_obs::current();
                        let parent = incoming
                            .request
                            .headers
                            .get(swf_obs::TRACE_HEADER)
                            .map(|h| swf_obs::SpanContext::from_header(h))
                            .unwrap_or(swf_obs::SpanContext::NONE);
                        let component = format!("{rev_name}/queue-proxy");
                        let queued =
                            obs.span(parent, &component, "queue-proxy", swf_obs::Category::Queue);
                        let guard = this.hub.start_request(&rev_name);
                        let _slot = gate.acquire().await;
                        sleep(this.config.queue_proxy_overhead).await;
                        drop(queued);
                        let exec = obs.span(
                            parent,
                            &component,
                            format!("exec:{service}"),
                            swf_obs::Category::Compute,
                        );
                        // Re-resolve the backing container at serve time:
                        // a liveness restart swaps it while the pod (and
                        // this proxy) live on.
                        let container = this
                            .k8s
                            .api()
                            .pods()
                            .get(&pod_name)
                            .and_then(|p| p.status.container);
                        let response =
                            Self::serve_one(&runtime, container, handler, &service, &incoming)
                                .await;
                        drop(exec);
                        incoming.respond(response);
                        drop(guard);
                        pending.set(pending.get().saturating_sub(1));
                    });
                }
                Either::Left(None) => break, // listener torn down
                Either::Right(_) => continue,
            }
        }
        self.http.unlisten(node, port);
    }

    async fn serve_one(
        runtime: &swf_container::ContainerRuntime,
        container: Option<swf_container::ContainerId>,
        handler: Option<crate::handlers::Handler>,
        service: &str,
        incoming: &Incoming,
    ) -> Response {
        let Some(handler) = handler else {
            return Response {
                status: 404,
                body: bytes::Bytes::from(format!("no handler for {service}")),
            };
        };
        let Some(container) = container else {
            // Mid-restart: the pod currently has no backing container.
            return Response {
                status: 503,
                body: bytes::Bytes::from(format!("no backing container for {service}")),
            };
        };
        let workload = handler(&incoming.request);
        match runtime.exec(container, workload).await {
            // The function itself failed: a real 500, never retried.
            Err(swf_container::ContainerError::TaskFailed(e)) => Response {
                status: 500,
                body: bytes::Bytes::from(e),
            },
            // The container is gone or not running (crashed under the
            // request): retryable unavailability, not an app failure.
            Err(e) => Response {
                status: 503,
                body: bytes::Bytes::from(format!("container unavailable: {e}")),
            },
            Ok(result) => Response::ok(result.output),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use swf_cluster::{Cluster, ClusterConfig, NodeId, Request};
    use swf_container::{Image, ImageRef, Registry, RegistryConfig, Workload};
    use swf_k8s::{K8s, K8sConfig};
    use swf_simcore::{secs, Sim};

    /// Boot k8s + serving + pod servers and one ready KService pod.
    fn boot(cc: u32) -> (Sim, Rc<RefCell<Option<Env>>>) {
        let sim = Sim::new();
        let out = Rc::new(RefCell::new(None));
        let out2 = Rc::clone(&out);
        sim.block_on(async move {
            let cluster = Cluster::new(&ClusterConfig::default());
            let registry = Registry::new(RegistryConfig::default());
            let image = ImageRef::parse("fn:v1");
            registry.push(Image::python_scientific(image.clone(), 1));
            let k8s = K8s::start(&cluster, registry, K8sConfig::default(), 7);
            let ksvcs: Store<crate::ksvc::KService> = Store::new();
            let revisions: Store<Revision> = Store::new();
            let handlers = HandlerRegistry::new();
            let hub = MetricHub::new();
            let config = crate::config::KnativeConfig::default();
            spawn(
                crate::serving::ServingController::new(
                    ksvcs.clone(),
                    revisions.clone(),
                    k8s.clone(),
                    config,
                )
                .run(),
            );
            let ps = PodServers::new(
                k8s.clone(),
                cluster.http().clone(),
                revisions.clone(),
                handlers.clone(),
                hub.clone(),
                config.data_plane,
            );
            spawn(ps.run());
            handlers.register_fn("echo", |req| {
                let body = req.body.clone();
                Workload::new(secs(0.458), move || Ok(body))
            });
            ksvcs.put(
                "echo",
                crate::ksvc::KService::new("echo", image)
                    .with_min_scale(1)
                    .with_container_concurrency(cc),
            );
            k8s.wait_endpoints("echo-00001-private", 1, secs(120.0))
                .await
                .unwrap();
            *out2.borrow_mut() = Some(Env { cluster, k8s, hub });
        });
        (sim, out)
    }

    struct Env {
        cluster: Cluster,
        k8s: K8s,
        hub: MetricHub,
    }

    #[test]
    fn warm_pod_serves_requests_with_container_reuse() {
        let (sim, env) = boot(0);
        let env2 = Rc::clone(&env);
        sim.block_on(async move {
            let e = env2.borrow_mut().take().unwrap();
            let eps = e.k8s.api().endpoints().get("echo-00001-private").unwrap();
            let ep = eps.ready[0];
            let t0 = swf_simcore::now();
            for i in 0..5u8 {
                let resp = e
                    .cluster
                    .http()
                    .request(
                        NodeId(0),
                        ep.node,
                        ep.port,
                        Request::post("/", Bytes::from(vec![i])),
                    )
                    .await
                    .unwrap();
                assert!(resp.is_success());
                assert_eq!(&resp.body[..], &[i]);
            }
            let elapsed = (swf_simcore::now() - t0).as_secs_f64();
            // 5 × (compute 0.458 + ~0.01 overhead): container reused, no
            // lifecycle cost.
            assert!(elapsed < 5.0 * 0.50, "elapsed {elapsed}");
            // Exactly one container created, five execs.
            let rt = e.k8s.runtime(ep.node).unwrap();
            assert_eq!(rt.created_total(), 1);
            assert_eq!(rt.execs_total(), 5);
            assert_eq!(e.hub.total_served("echo-00001"), 5);
        });
    }

    #[test]
    fn container_concurrency_one_serializes() {
        let (sim, env) = boot(1);
        let env2 = Rc::clone(&env);
        sim.block_on(async move {
            let e = env2.borrow_mut().take().unwrap();
            let eps = e.k8s.api().endpoints().get("echo-00001-private").unwrap();
            let ep = eps.ready[0];
            let t0 = swf_simcore::now();
            let handles: Vec<_> = (0..3u8)
                .map(|i| {
                    let http = e.cluster.http().clone();
                    spawn(async move {
                        http.request(
                            NodeId(0),
                            ep.node,
                            ep.port,
                            Request::post("/", Bytes::from(vec![i])),
                        )
                        .await
                        .unwrap()
                    })
                })
                .collect();
            swf_simcore::join_all(handles).await;
            let elapsed = (swf_simcore::now() - t0).as_secs_f64();
            // Serialized: ≥ 3 × 0.458.
            assert!(elapsed >= 3.0 * 0.458, "elapsed {elapsed}");
        });
    }

    #[test]
    fn unlimited_concurrency_overlaps_requests() {
        let (sim, env) = boot(0);
        let env2 = Rc::clone(&env);
        sim.block_on(async move {
            let e = env2.borrow_mut().take().unwrap();
            let eps = e.k8s.api().endpoints().get("echo-00001-private").unwrap();
            let ep = eps.ready[0];
            let t0 = swf_simcore::now();
            let handles: Vec<_> = (0..3u8)
                .map(|i| {
                    let http = e.cluster.http().clone();
                    spawn(async move {
                        http.request(
                            NodeId(0),
                            ep.node,
                            ep.port,
                            Request::post("/", Bytes::from(vec![i])),
                        )
                        .await
                        .unwrap()
                    })
                })
                .collect();
            swf_simcore::join_all(handles).await;
            let elapsed = (swf_simcore::now() - t0).as_secs_f64();
            // Node has 8 cores: the three 0.458s tasks overlap.
            assert!(elapsed < 1.0, "elapsed {elapsed}");
        });
    }
}
