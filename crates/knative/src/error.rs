//! Knative platform errors.

use std::fmt;

/// Errors surfaced by the serverless platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnativeError {
    /// No such KService.
    ServiceNotFound(String),
    /// No handler registered for a service's function.
    HandlerMissing(String),
    /// Cold start did not produce a ready pod in time.
    ColdStartTimeout(String),
    /// All forwarding attempts failed.
    Unavailable(String),
    /// Every retry of the invoke path failed; carries the last failure.
    RetriesExhausted {
        /// The KService being invoked.
        service: String,
        /// Attempts made (first try included).
        attempts: u32,
        /// The final attempt's failure.
        last: String,
    },
    /// Every retry hit overload control — queue-proxy 503s or an open
    /// circuit breaker — rather than a transport failure.
    Overloaded {
        /// The KService being invoked.
        service: String,
        /// Attempts made (fast-fails included).
        attempts: u32,
        /// The final attempt's overload signal.
        last: String,
    },
    /// The function itself failed.
    FunctionFailed(String),
    /// Underlying orchestrator failure.
    K8s(String),
}

impl fmt::Display for KnativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnativeError::ServiceNotFound(s) => write!(f, "kservice not found: {s}"),
            KnativeError::HandlerMissing(s) => write!(f, "no handler registered for {s}"),
            KnativeError::ColdStartTimeout(s) => write!(f, "cold start timed out for {s}"),
            KnativeError::Unavailable(s) => write!(f, "service unavailable: {s}"),
            KnativeError::RetriesExhausted {
                service,
                attempts,
                last,
            } => write!(
                f,
                "{service}: retries exhausted after {attempts} attempts ({last})"
            ),
            KnativeError::Overloaded {
                service,
                attempts,
                last,
            } => write!(
                f,
                "{service}: overloaded after {attempts} attempts ({last})"
            ),
            KnativeError::FunctionFailed(s) => write!(f, "function failed: {s}"),
            KnativeError::K8s(s) => write!(f, "orchestrator error: {s}"),
        }
    }
}

impl std::error::Error for KnativeError {}

impl From<swf_k8s::K8sError> for KnativeError {
    fn from(e: swf_k8s::K8sError) -> Self {
        KnativeError::K8s(e.to_string())
    }
}
