//! # swf-knative
//!
//! Knative-style serverless platform for the *Serverless Computing for
//! Dynamic HPC Workflows* reproduction: KServices and Revisions, the KPA
//! autoscaler (stable/panic windows, scale-to-zero grace, `min-scale` /
//! `initial-scale` / `target` annotations), the activator cold-start path,
//! per-pod queue-proxies enforcing `containerConcurrency`, and a revision
//! router with deterministic round-robin.
//!
//! Calibration: a warm invocation adds ≈ 20 ms over task compute; a cold
//! start with a cached image costs ≈ 1.48 s end to end — both taken from
//! the paper (§III-B / Fig. 1).

#![warn(missing_docs)]

pub mod autoscaler;
pub mod breaker;
pub mod config;
pub mod error;
pub mod handlers;
pub mod ksvc;
pub mod metrics;
pub mod platform;
pub mod pod_server;
pub mod router;
pub mod serving;

pub use autoscaler::{Autoscaler, ScaleDecision};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use config::{
    AutoscalerConfig, DataPlaneConfig, KnativeConfig, INITIAL_SCALE_ANNOTATION,
    MAX_SCALE_ANNOTATION, MIN_SCALE_ANNOTATION, TARGET_ANNOTATION,
};
pub use error::KnativeError;
pub use handlers::{Handler, HandlerRegistry};
pub use ksvc::{KService, Revision};
pub use metrics::MetricHub;
pub use platform::Knative;
pub use pod_server::PodServers;
pub use router::{Router, RouterConfig, RoutingPolicy};
pub use serving::ServingController;
