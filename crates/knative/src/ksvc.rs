//! Knative Services and Revisions.

use swf_container::{ImageRef, ResourceLimits};
use swf_k8s::ObjectMeta;

use crate::config::{
    INITIAL_SCALE_ANNOTATION, MAX_SCALE_ANNOTATION, MIN_SCALE_ANNOTATION, TARGET_ANNOTATION,
};

/// A Knative Service: the user-facing object. Creating one materializes a
/// Revision, a Kubernetes Deployment and a routable endpoint.
#[derive(Clone, Debug)]
pub struct KService {
    /// Metadata; autoscaling annotations live here.
    pub meta: ObjectMeta,
    /// Function container image.
    pub image: ImageRef,
    /// Maximum concurrent requests per container (0 = unlimited,
    /// 1 = the paper's strongest-isolation serverless setting).
    pub container_concurrency: u32,
    /// Resource requests/limits of each function pod.
    pub resources: ResourceLimits,
}

impl KService {
    /// Service with default annotations.
    pub fn new(name: impl Into<String>, image: ImageRef) -> Self {
        KService {
            meta: ObjectMeta::named(name),
            image,
            container_concurrency: 0,
            resources: ResourceLimits::default(),
        }
    }

    /// Set pod resources (builder style).
    pub fn with_resources(mut self, resources: ResourceLimits) -> Self {
        self.resources = resources;
        self
    }

    /// Set container concurrency (builder style).
    pub fn with_container_concurrency(mut self, cc: u32) -> Self {
        self.container_concurrency = cc;
        self
    }

    /// Set `autoscaling.knative.dev/min-scale` (builder style).
    pub fn with_min_scale(mut self, n: u32) -> Self {
        self.meta
            .annotations
            .insert(MIN_SCALE_ANNOTATION.into(), n.to_string());
        self
    }

    /// Set `autoscaling.knative.dev/initial-scale` (builder style).
    pub fn with_initial_scale(mut self, n: u32) -> Self {
        self.meta
            .annotations
            .insert(INITIAL_SCALE_ANNOTATION.into(), n.to_string());
        self
    }

    /// Set `autoscaling.knative.dev/target` (builder style).
    pub fn with_target(mut self, target: f64) -> Self {
        self.meta
            .annotations
            .insert(TARGET_ANNOTATION.into(), target.to_string());
        self
    }

    /// Set `autoscaling.knative.dev/max-scale` (builder style).
    pub fn with_max_scale(mut self, n: u32) -> Self {
        self.meta
            .annotations
            .insert(MAX_SCALE_ANNOTATION.into(), n.to_string());
        self
    }
}

/// A materialized revision of a KService.
#[derive(Clone, Debug)]
pub struct Revision {
    /// Metadata (name = `<ksvc>-00001`).
    pub meta: ObjectMeta,
    /// Owning KService name.
    pub service: String,
    /// Image deployed.
    pub image: ImageRef,
    /// Per-container concurrency limit (0 = unlimited).
    pub container_concurrency: u32,
    /// Floor on replicas.
    pub min_scale: u32,
    /// Replicas at creation.
    pub initial_scale: u32,
    /// Per-pod concurrency target for the autoscaler.
    pub target: f64,
    /// Cap on replicas (0 = uncapped).
    pub max_scale: u32,
    /// Pod resources.
    pub resources: ResourceLimits,
}

impl Revision {
    /// Derive the revision from a KService, applying annotation defaults.
    pub fn from_service(ksvc: &KService, default_target: f64) -> Self {
        let min_scale = ksvc
            .meta
            .annotation::<u32>(MIN_SCALE_ANNOTATION)
            .unwrap_or(0);
        // Knative defaults initial-scale to 1 (a revision starts one pod
        // unless explicitly deferred to 0).
        let initial_scale = ksvc
            .meta
            .annotation::<u32>(INITIAL_SCALE_ANNOTATION)
            .unwrap_or(1)
            .max(min_scale);
        let target = ksvc
            .meta
            .annotation::<f64>(TARGET_ANNOTATION)
            .unwrap_or(default_target);
        let max_scale = ksvc
            .meta
            .annotation::<u32>(MAX_SCALE_ANNOTATION)
            .unwrap_or(0);
        Revision {
            meta: ObjectMeta::named(format!("{}-00001", ksvc.meta.name)).owned_by(&ksvc.meta.name),
            service: ksvc.meta.name.clone(),
            image: ksvc.image.clone(),
            container_concurrency: ksvc.container_concurrency,
            min_scale,
            initial_scale,
            target,
            max_scale,
            resources: ksvc.resources,
        }
    }

    /// Name of the backing Kubernetes Deployment.
    pub fn deployment_name(&self) -> String {
        format!("{}-deployment", self.meta.name)
    }

    /// Name of the backing Kubernetes Service (endpoints source).
    pub fn k8s_service_name(&self) -> String {
        format!("{}-private", self.meta.name)
    }

    /// The label selecting this revision's pods.
    pub fn pod_label() -> &'static str {
        "serving.knative.dev/revision"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_annotations_flow_into_revision() {
        let ksvc = KService::new("matmul", ImageRef::parse("hpc/matmul"))
            .with_container_concurrency(1)
            .with_min_scale(3)
            .with_target(2.0)
            .with_max_scale(8);
        let rev = Revision::from_service(&ksvc, 1.0);
        assert_eq!(rev.meta.name, "matmul-00001");
        assert_eq!(rev.service, "matmul");
        assert_eq!(rev.container_concurrency, 1);
        assert_eq!(rev.min_scale, 3);
        assert_eq!(rev.initial_scale, 3); // floored by min-scale
        assert_eq!(rev.target, 2.0);
        assert_eq!(rev.max_scale, 8);
        assert_eq!(rev.deployment_name(), "matmul-00001-deployment");
    }

    #[test]
    fn initial_scale_zero_defers_downloads() {
        let ksvc = KService::new("m", ImageRef::parse("i")).with_initial_scale(0);
        let rev = Revision::from_service(&ksvc, 1.0);
        assert_eq!(rev.initial_scale, 0);
        assert_eq!(rev.min_scale, 0);
    }

    #[test]
    fn default_initial_scale_is_one() {
        let ksvc = KService::new("m", ImageRef::parse("i"));
        let rev = Revision::from_service(&ksvc, 1.0);
        assert_eq!(rev.initial_scale, 1);
        assert_eq!(rev.target, 1.0);
    }
}
