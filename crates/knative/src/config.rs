//! Knative platform configuration, calibrated to the paper's measurements.

use swf_simcore::{millis, RetryPolicy, SimDuration};

/// Autoscaler (KPA) parameters.
#[derive(Clone, Copy, Debug)]
pub struct AutoscalerConfig {
    /// Scrape/decide interval.
    pub tick: SimDuration,
    /// Stable window: concurrency is averaged over this span.
    pub stable_window: SimDuration,
    /// Panic window: if short-term concurrency is at least
    /// `panic_threshold ×` current capacity, scale on the short window.
    pub panic_window: SimDuration,
    /// Panic trigger as a multiple of current capacity.
    pub panic_threshold: f64,
    /// Keep the last pod for this long after concurrency reaches zero.
    pub scale_to_zero_grace: SimDuration,
    /// Default per-pod concurrency target when a revision specifies none.
    pub default_target: f64,
    /// Upper bound on pods per revision (0 = limited by cluster only).
    pub max_scale: u32,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            tick: millis(2000),
            stable_window: SimDuration::from_secs(60),
            panic_window: SimDuration::from_secs(6),
            panic_threshold: 2.0,
            scale_to_zero_grace: SimDuration::from_secs(30),
            default_target: 1.0,
            max_scale: 0,
        }
    }
}

/// Data-plane and activator parameters.
#[derive(Clone, Copy, Debug)]
pub struct DataPlaneConfig {
    /// Queue-proxy handling overhead per request.
    pub queue_proxy_overhead: SimDuration,
    /// Activator decision latency on the cold-start path (poking the
    /// autoscaler and re-resolving endpoints).
    pub activator_latency: SimDuration,
    /// Application boot time from container start to readiness (Flask
    /// importing NumPy in the paper's functions).
    pub app_boot: SimDuration,
    /// Queue-proxy admission bound: requests held beyond
    /// `containerConcurrency` before new arrivals are shed with a typed
    /// 503 (`0` = unbounded queue, the historical behaviour).
    pub queue_depth: u32,
}

impl Default for DataPlaneConfig {
    fn default() -> Self {
        DataPlaneConfig {
            // Calibrated so a warm invocation adds ≈ 20 ms beyond compute
            // (Fig. 1: Knative per-task ≈ compute + 0.02 s).
            queue_proxy_overhead: millis(8),
            activator_latency: millis(50),
            // Calibrated so the end-to-end cold start with a cached image
            // lands at the paper's 1.48 s (§III-B).
            app_boot: millis(1250),
            queue_depth: 0,
        }
    }
}

/// Whole-platform configuration.
#[derive(Clone, Copy, Debug)]
pub struct KnativeConfig {
    /// Autoscaler parameters.
    pub autoscaler: AutoscalerConfig,
    /// Data-plane parameters.
    pub data_plane: DataPlaneConfig,
    /// Ingress routing policy (round-robin, or the §IX-D least-loaded
    /// redirection).
    pub routing: crate::router::RoutingPolicy,
    /// Retry schedule for the router's invoke path. The default preserves
    /// the historical behaviour — eight immediate attempts, no RNG draws —
    /// so calm runs do not drift; chaos experiments opt into spaced,
    /// jittered backoff.
    pub invoke_retry: RetryPolicy,
    /// Per-attempt forwarding deadline (`None` = wait indefinitely). A
    /// timed-out attempt counts as retryable, like a reset connection.
    pub attempt_timeout: Option<SimDuration>,
    /// Seed for the router's retry-jitter stream.
    pub seed: u64,
    /// Per-revision circuit breaker on the router's invoke path. Disabled
    /// by default (`failure_threshold == 0`), so calm runs keep the
    /// historical path bit-for-bit.
    pub breaker: crate::breaker::BreakerConfig,
    /// Health probe attached to every revision pod (`None` = no probing,
    /// the historical behaviour). Chaos experiments enable it so crashed
    /// containers go unready and get restarted in place.
    pub pod_probe: Option<swf_k8s::ProbeSpec>,
}

impl Default for KnativeConfig {
    fn default() -> Self {
        KnativeConfig {
            autoscaler: AutoscalerConfig::default(),
            data_plane: DataPlaneConfig::default(),
            routing: crate::router::RoutingPolicy::default(),
            invoke_retry: RetryPolicy::immediate(8),
            attempt_timeout: None,
            seed: 0,
            breaker: crate::breaker::BreakerConfig::default(),
            pod_probe: None,
        }
    }
}

/// Annotation key: minimum replica count (pre-staging).
pub const MIN_SCALE_ANNOTATION: &str = "autoscaling.knative.dev/min-scale";
/// Annotation key: replica count at revision creation (0 defers downloads).
pub const INITIAL_SCALE_ANNOTATION: &str = "autoscaling.knative.dev/initial-scale";
/// Annotation key: per-pod concurrency target.
pub const TARGET_ANNOTATION: &str = "autoscaling.knative.dev/target";
/// Annotation key: maximum replica count.
pub const MAX_SCALE_ANNOTATION: &str = "autoscaling.knative.dev/max-scale";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_knative_conventions() {
        let a = AutoscalerConfig::default();
        assert_eq!(a.stable_window, SimDuration::from_secs(60));
        assert_eq!(a.scale_to_zero_grace, SimDuration::from_secs(30));
        assert_eq!(a.default_target, 1.0);
        assert!(a.panic_threshold > 1.0);
    }

    #[test]
    fn cold_start_calibration_sums_toward_paper_value() {
        let d = DataPlaneConfig::default();
        // activator + app boot dominate; container create/start and
        // scheduling add the rest (see swf-container OverheadModel).
        let partial = d.activator_latency + d.app_boot;
        assert!(partial < SimDuration::from_secs_f64(1.48));
        assert!(partial > SimDuration::from_secs_f64(1.2));
    }
}
