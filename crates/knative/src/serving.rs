//! The serving controller: KService → Revision → Deployment + Service.

use swf_k8s::{Deployment, LabelSelector, ObjectMeta, PodSpec, PodTemplate, Service, Store};
use swf_simcore::race;

use crate::config::KnativeConfig;
use crate::ksvc::{KService, Revision};

/// Reconciles KServices into revisions and Kubernetes objects.
pub struct ServingController {
    ksvcs: Store<KService>,
    revisions: Store<Revision>,
    k8s: swf_k8s::K8s,
    config: KnativeConfig,
}

impl ServingController {
    /// New controller over the given stores.
    pub fn new(
        ksvcs: Store<KService>,
        revisions: Store<Revision>,
        k8s: swf_k8s::K8s,
        config: KnativeConfig,
    ) -> Self {
        ServingController {
            ksvcs,
            revisions,
            k8s,
            config,
        }
    }

    /// Run forever.
    pub async fn run(self) {
        let mut ksvcs = self.ksvcs.watch();
        let mut revisions = self.revisions.watch();
        loop {
            self.reconcile().await;
            race(ksvcs.changed(), revisions.changed()).await;
        }
    }

    /// One pass.
    pub async fn reconcile(&self) {
        // Materialize revisions and their Kubernetes backing.
        for (name, ksvc) in self.ksvcs.entries() {
            let rev_name = format!("{name}-00001");
            if !self.revisions.contains(&rev_name) {
                let rev = Revision::from_service(&ksvc, self.config.autoscaler.default_target);
                self.materialize(&rev).await;
                self.revisions.put(rev_name, rev);
            }
        }
        // Tear down revisions whose KService is gone.
        for (rev_name, rev) in self.revisions.entries() {
            if !self.ksvcs.contains(&rev.service) {
                let _ = self
                    .k8s
                    .api()
                    .delete_deployment(&rev.deployment_name())
                    .await;
                self.revisions.delete(&rev_name);
            }
        }
    }

    async fn materialize(&self, rev: &Revision) {
        let pod_labels = ObjectMeta::default()
            .with_label(Revision::pod_label(), &rev.meta.name)
            .with_label("serving.knative.dev/service", &rev.service);
        let mut pod_spec = PodSpec::new(rev.image.clone())
            .with_resources(rev.resources)
            .with_readiness_delay(self.config.data_plane.app_boot);
        if let Some(probe) = self.config.pod_probe {
            pod_spec = pod_spec.with_probe(probe);
        }
        let selector = LabelSelector::eq(Revision::pod_label(), &rev.meta.name);
        let _ = self
            .k8s
            .api()
            .create_deployment(Deployment::new(
                ObjectMeta::named(rev.deployment_name()),
                rev.initial_scale,
                selector.clone(),
                PodTemplate {
                    meta: pod_labels,
                    spec: pod_spec,
                },
            ))
            .await;
        let _ = self
            .k8s
            .api()
            .create_service(Service {
                meta: ObjectMeta::named(rev.k8s_service_name()),
                selector,
            })
            .await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_cluster::{Cluster, ClusterConfig};
    use swf_container::{Image, ImageRef, Registry, RegistryConfig};
    use swf_k8s::{K8s, K8sConfig};
    use swf_simcore::{secs, sleep, spawn, Sim};

    fn boot() -> (swf_k8s::K8s, Store<KService>, Store<Revision>, ImageRef) {
        let cluster = Cluster::new(&ClusterConfig::default());
        let registry = Registry::new(RegistryConfig::default());
        let image = ImageRef::parse("fn:v1");
        registry.push(Image::python_scientific(image.clone(), 1));
        let k8s = K8s::start(&cluster, registry, K8sConfig::default(), 7);
        let ksvcs: Store<KService> = Store::new();
        let revisions: Store<Revision> = Store::new();
        spawn(
            ServingController::new(
                ksvcs.clone(),
                revisions.clone(),
                k8s.clone(),
                KnativeConfig::default(),
            )
            .run(),
        );
        (k8s, ksvcs, revisions, image)
    }

    #[test]
    fn kservice_materializes_deployment_and_service() {
        let sim = Sim::new();
        sim.block_on(async {
            let (k8s, ksvcs, revisions, image) = boot();
            let ksvc = KService::new("matmul", image).with_min_scale(2);
            ksvcs.put("matmul", ksvc);
            sleep(secs(1.0)).await;
            assert!(revisions.contains("matmul-00001"));
            let dep = k8s
                .api()
                .deployments()
                .get("matmul-00001-deployment")
                .unwrap();
            assert_eq!(dep.replicas, 2);
            assert!(k8s.api().services().contains("matmul-00001-private"));
            // Pods eventually become ready with the app-boot readiness delay.
            k8s.wait_endpoints("matmul-00001-private", 2, secs(120.0))
                .await
                .unwrap();
        });
    }

    #[test]
    fn initial_scale_zero_creates_no_pods() {
        let sim = Sim::new();
        sim.block_on(async {
            let (k8s, ksvcs, _revisions, image) = boot();
            ksvcs.put("lazy", KService::new("lazy", image).with_initial_scale(0));
            sleep(secs(5.0)).await;
            assert_eq!(k8s.api().pods().len(), 0);
            // Deferred download: nothing pulled anywhere.
            for n in k8s.schedulable_nodes() {
                assert!(!k8s.registry().is_cached(n, &ImageRef::parse("fn:v1")));
            }
        });
    }

    #[test]
    fn deleting_kservice_cascades() {
        let sim = Sim::new();
        sim.block_on(async {
            let (k8s, ksvcs, revisions, image) = boot();
            ksvcs.put("m", KService::new("m", image));
            sleep(secs(30.0)).await;
            assert!(revisions.contains("m-00001"));
            ksvcs.delete("m");
            sleep(secs(30.0)).await;
            assert!(!revisions.contains("m-00001"));
            assert!(!k8s.api().deployments().contains("m-00001-deployment"));
            assert_eq!(k8s.api().pods().len(), 0);
        });
    }
}
