//! Function handler registry.
//!
//! A handler turns an HTTP request into a containerized [`Workload`] — the
//! simulated analogue of the paper's Flask route calling the matmul code.
//! Handlers are registered per KService before workflow execution, mirroring
//! the paper's manual pre-registration step.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use swf_cluster::Request;
use swf_container::Workload;

/// Builds a workload from a request.
pub type Handler = Rc<dyn Fn(&Request) -> Workload>;

/// Registry mapping KService name → handler.
#[derive(Clone, Default)]
pub struct HandlerRegistry {
    map: Rc<RefCell<BTreeMap<String, Handler>>>,
}

impl HandlerRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the handler for a service.
    pub fn register(&self, service: impl Into<String>, handler: Handler) {
        self.map.borrow_mut().insert(service.into(), handler);
    }

    /// Convenience: register from a plain closure.
    pub fn register_fn(
        &self,
        service: impl Into<String>,
        f: impl Fn(&Request) -> Workload + 'static,
    ) {
        self.register(service, Rc::new(f));
    }

    /// Look up a handler.
    pub fn get(&self, service: &str) -> Option<Handler> {
        self.map.borrow().get(service).cloned()
    }

    /// Is a handler registered?
    pub fn contains(&self, service: &str) -> bool {
        self.map.borrow().contains_key(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use swf_simcore::secs;

    #[test]
    fn register_and_build_workload() {
        let reg = HandlerRegistry::new();
        reg.register_fn("matmul", |req| {
            let n = req.body.len();
            Workload::new(secs(0.1), move || Ok(Bytes::from(vec![n as u8])))
        });
        assert!(reg.contains("matmul"));
        assert!(!reg.contains("other"));
        let h = reg.get("matmul").unwrap();
        let w = h(&Request::post("/", Bytes::from_static(b"abc")));
        assert_eq!(w.compute, secs(0.1));
        let out = (w.run)().unwrap();
        assert_eq!(&out[..], &[3]);
    }
}
