//! Ingress router + activator.
//!
//! Warm path: resolve the revision's ready endpoints, round-robin, forward.
//! Cold path (no endpoints): buffer the request at the activator — the
//! buffered demand counts toward autoscaler concurrency — poke the
//! Deployment to at least one replica, wait for an endpoint, then forward.
//! This is the 1.48 s cold start measured in the paper's §III-B.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use swf_cluster::{ClusterError, HttpStack, NodeId, Request, Response};
use swf_k8s::{RoundRobin, Store};
use swf_simcore::{millis, sleep, timeout, DetRng, Elapsed, RetryPolicy, SimDuration};

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::config::DataPlaneConfig;
use crate::error::KnativeError;
use crate::ksvc::Revision;
use crate::metrics::MetricHub;

/// How the router chooses among ready endpoints.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RoutingPolicy {
    /// Deterministic round-robin (kube-proxy-like; Knative's default-ish).
    #[default]
    RoundRobin,
    /// Prefer the pod on the node with the most free CPU capacity — the
    /// paper's §IX-D "task redirection away from over-utilized nodes".
    LeastLoaded,
}

/// Router parameters beyond the shared data-plane config.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Give up on a cold start after this long.
    pub cold_start_deadline: SimDuration,
    /// Retry schedule for forwarding attempts: `retry.attempts()` tries in
    /// total, spaced by `retry.delay_for`. The default — eight immediate
    /// attempts — reproduces the historical router bitwise (no sleeps, no
    /// RNG draws on the calm path).
    pub retry: RetryPolicy,
    /// Per-attempt forwarding deadline (`None` = wait indefinitely). An
    /// elapsed deadline is retryable, like a reset connection.
    pub attempt_timeout: Option<SimDuration>,
    /// Seed for the retry-jitter stream.
    pub seed: u64,
    /// Endpoint selection policy.
    pub policy: RoutingPolicy,
    /// Per-revision circuit breaker (disabled by default — no drift).
    pub breaker: BreakerConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            cold_start_deadline: SimDuration::from_secs(300),
            retry: RetryPolicy::immediate(8),
            attempt_timeout: None,
            seed: 0,
            policy: RoutingPolicy::RoundRobin,
            breaker: BreakerConfig::default(),
        }
    }
}

/// The ingress router.
#[derive(Clone)]
pub struct Router {
    k8s: swf_k8s::K8s,
    http: HttpStack,
    revisions: Store<Revision>,
    hub: MetricHub,
    data_plane: DataPlaneConfig,
    config: RouterConfig,
    balancers: Rc<RefCell<BTreeMap<String, RoundRobin>>>,
    retry_rng: Rc<RefCell<DetRng>>,
    breakers: Rc<RefCell<BTreeMap<String, Rc<CircuitBreaker>>>>,
}

impl Router {
    /// New router.
    pub fn new(
        k8s: swf_k8s::K8s,
        http: HttpStack,
        revisions: Store<Revision>,
        hub: MetricHub,
        data_plane: DataPlaneConfig,
        config: RouterConfig,
    ) -> Self {
        Router {
            k8s,
            http,
            revisions,
            hub,
            data_plane,
            config,
            balancers: Rc::new(RefCell::new(BTreeMap::new())),
            retry_rng: Rc::new(RefCell::new(DetRng::new(config.seed, "router-retry"))),
            breakers: Rc::new(RefCell::new(BTreeMap::new())),
        }
    }

    /// The circuit breaker guarding a revision (created on first use).
    pub fn breaker(&self, revision: &str) -> Rc<CircuitBreaker> {
        Rc::clone(
            self.breakers
                .borrow_mut()
                .entry(revision.to_string())
                .or_insert_with(|| Rc::new(CircuitBreaker::new(self.config.breaker))),
        )
    }

    /// Resolve the single active revision of a KService.
    pub fn active_revision(&self, service: &str) -> Result<Revision, KnativeError> {
        self.revisions
            .get(&format!("{service}-00001"))
            .ok_or_else(|| KnativeError::ServiceNotFound(service.to_string()))
    }

    /// Invoke `service` from `from`, synchronously returning the response.
    pub async fn invoke(
        &self,
        from: NodeId,
        service: &str,
        mut request: Request,
    ) -> Result<Response, KnativeError> {
        let obs = swf_obs::current();
        let parent = request
            .headers
            .get(swf_obs::TRACE_HEADER)
            .map(|h| swf_obs::SpanContext::from_header(h))
            .unwrap_or(swf_obs::SpanContext::NONE);
        let span = obs.span(
            parent,
            "knative/router",
            format!("invoke:{service}"),
            swf_obs::Category::Transfer,
        );
        if !span.ctx().is_none() {
            request
                .headers
                .insert(swf_obs::TRACE_HEADER.to_string(), span.ctx().to_header());
        }
        obs.counter_add("knative.invocations", 1);
        let t0 = swf_simcore::now();
        let revision = self.active_revision(service)?;
        let eps_name = revision.k8s_service_name();
        let breaker = self.breaker(&revision.meta.name);
        let mut attempts = 0;
        // Whether the final failed attempt was an overload signal (503 or
        // open circuit); every retryable match arm below assigns it.
        let mut last_was_overload;
        loop {
            // Breaker admission precedes endpoint resolution: an open
            // circuit fast-fails without touching the network.
            let permit = match breaker.admit() {
                Ok(p) => p,
                Err(wait) => {
                    attempts += 1;
                    obs.counter_add("knative.breaker_fast_fail", 1);
                    if attempts >= self.config.retry.attempts() {
                        return Err(KnativeError::Overloaded {
                            service: service.to_string(),
                            attempts,
                            last: "circuit open".to_string(),
                        });
                    }
                    let delay = self
                        .config
                        .retry
                        .delay_for(attempts, &mut self.retry_rng.borrow_mut());
                    // An immediate retry policy would spin against an open
                    // circuit without advancing virtual time; wait out the
                    // remaining cooldown instead.
                    sleep(if delay.is_zero() {
                        wait.max(millis(10))
                    } else {
                        delay
                    })
                    .await;
                    continue;
                }
            };
            let endpoint = {
                let eps = self
                    .k8s
                    .api()
                    .endpoints()
                    .get(&eps_name)
                    .unwrap_or_default();
                match self.config.policy {
                    RoutingPolicy::RoundRobin => {
                        let mut balancers = self.balancers.borrow_mut();
                        let rr = balancers.entry(revision.meta.name.clone()).or_default();
                        rr.pick(&eps)
                    }
                    RoutingPolicy::LeastLoaded => self.pick_least_loaded(&eps),
                }
            };
            match endpoint {
                Some(ep) => {
                    let forward = self.http.request(from, ep.node, ep.port, request.clone());
                    // `None` marks an attempt that hit `attempt_timeout`.
                    let outcome = match self.config.attempt_timeout {
                        Some(deadline) => timeout(deadline, forward).await.ok(),
                        None => Some(forward.await),
                    };
                    let failure = match outcome {
                        Some(Ok(resp)) if resp.status == 500 => {
                            // The revision answered; the function itself is
                            // broken — a transport success for the breaker.
                            breaker.record(permit, true);
                            return Err(KnativeError::FunctionFailed(
                                String::from_utf8_lossy(&resp.body).to_string(),
                            ));
                        }
                        Some(Ok(resp)) if resp.status == 503 => {
                            // Queue-proxy overload control shed the request;
                            // retryable, and it counts toward the breaker.
                            breaker.record(permit, false);
                            obs.counter_add("knative.overloaded_503", 1);
                            last_was_overload = true;
                            String::from_utf8_lossy(&resp.body).to_string()
                        }
                        Some(Ok(resp)) => {
                            breaker.record(permit, true);
                            // End-to-end request latency, retries and cold
                            // waits included — the SLO engine's
                            // serverless-path objective.
                            obs.observe(
                                "knative.request_s",
                                (swf_simcore::now() - t0).as_secs_f64(),
                            );
                            return Ok(resp);
                        }
                        Some(Err(e))
                            if matches!(
                                e,
                                ClusterError::ConnectionRefused { .. }
                                    | ClusterError::ConnectionReset
                                    | ClusterError::Partitioned { .. }
                            ) =>
                        {
                            // Pod died — or the link dropped — between
                            // endpoint resolution and delivery; retry
                            // against fresh endpoints.
                            breaker.record(permit, false);
                            last_was_overload = false;
                            e.to_string()
                        }
                        Some(Err(e)) => {
                            breaker.record(permit, false);
                            return Err(KnativeError::Unavailable(e.to_string()));
                        }
                        None => {
                            breaker.record(permit, false);
                            last_was_overload = false;
                            "attempt deadline elapsed".to_string()
                        }
                    };
                    attempts += 1;
                    obs.counter_add("knative.request_retries", 1);
                    if attempts >= self.config.retry.attempts() {
                        return Err(if last_was_overload {
                            KnativeError::Overloaded {
                                service: service.to_string(),
                                attempts,
                                last: failure,
                            }
                        } else {
                            KnativeError::RetriesExhausted {
                                service: service.to_string(),
                                attempts,
                                last: failure,
                            }
                        });
                    }
                    let delay = self
                        .config
                        .retry
                        .delay_for(attempts, &mut self.retry_rng.borrow_mut());
                    if !delay.is_zero() {
                        // Backed-off retry; the immediate default never
                        // sleeps, keeping the calm path bit-identical.
                        sleep(delay).await;
                    }
                }
                None => {
                    // Cold start: buffer at the activator until ready. No
                    // forwarding attempt was made, so the permit is
                    // released without a breaker transition.
                    breaker.cancel(permit);
                    self.activate(&revision, span.ctx()).await?;
                }
            }
        }
    }

    /// §IX-D task redirection: route to the endpoint whose node currently
    /// has the most free cores, falling back to round-robin order on ties
    /// (sorted endpoint lists keep this deterministic).
    fn pick_least_loaded(&self, eps: &swf_k8s::Endpoints) -> Option<swf_k8s::Endpoint> {
        eps.ready.iter().copied().max_by_key(|ep| {
            self.k8s
                .runtime(ep.node)
                .map(|rt| rt.node().cores().available())
                .unwrap_or(0)
        })
    }

    /// The activator path: register buffered demand, poke the deployment,
    /// wait for at least one ready endpoint.
    async fn activate(
        &self,
        revision: &Revision,
        parent: swf_obs::SpanContext,
    ) -> Result<(), KnativeError> {
        let obs = swf_obs::current();
        let cold = obs.span(
            parent,
            "knative/activator",
            format!("cold-wait:{}", revision.meta.name),
            swf_obs::Category::ColdStart,
        );
        obs.counter_add("knative.cold_starts", 1);
        let t_cold = swf_simcore::now();
        let _buffered = self.hub.buffer_request(&revision.meta.name);
        sleep(self.data_plane.activator_latency).await;
        // Poke: ensure the deployment wants at least one replica without
        // waiting for the next autoscaler tick (Knative's activator sends
        // a scale-up hint to the autoscaler).
        let dep = revision.deployment_name();
        let current = self.k8s.api().deployments().get(&dep).map(|d| d.replicas);
        if current == Some(0) {
            let floor = revision.min_scale.max(1);
            let _ = self.k8s.api().scale_deployment(&dep, floor).await;
        }
        let eps_name = revision.k8s_service_name();
        let wait = self
            .k8s
            .wait_endpoints(&eps_name, 1, self.config.cold_start_deadline);
        match timeout(self.config.cold_start_deadline, wait).await {
            Ok(Ok(())) => {
                obs.observe(
                    "knative.cold_wait_s",
                    (swf_simcore::now() - t_cold).as_secs_f64(),
                );
                // Causally link the wait to the pod boot(s) it waited on.
                if !cold.ctx().is_none() {
                    let rev_name = revision.meta.name.clone();
                    for pod in self
                        .k8s
                        .api()
                        .pods()
                        .filter(|p| p.meta.labels.get(Revision::pod_label()) == Some(&rev_name))
                    {
                        let anchor = obs.anchor(&format!("pod/{}", pod.meta.name));
                        obs.link_from(cold.ctx(), anchor);
                    }
                }
                Ok(())
            }
            Ok(Err(e)) => Err(KnativeError::K8s(e.to_string())),
            Err(Elapsed) => Err(KnativeError::ColdStartTimeout(revision.service.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_config_defaults() {
        let c = RouterConfig::default();
        assert_eq!(c.retry.attempts(), 8);
        assert!(c.retry.base.is_zero(), "default retries are immediate");
        assert!(c.attempt_timeout.is_none());
        assert!(c.cold_start_deadline > SimDuration::from_secs(60));
    }
}
