//! The benchmark suite is a pure function of its inputs: two quick-suite
//! runs in the same process must produce bitwise-identical virtual-time
//! and observability sections, and `swf_metrics::compare` must report
//! neither drift nor regression between them.

use swf_bench::suite::run_suite;

/// Strip the host section (the only legitimately run-dependent part:
/// wall-clock under `host-profiling`) so the rest can be compared as text.
fn deterministic_sections(doc: &serde_json::Value) -> String {
    let mut doc = doc.clone();
    if let Some(obj) = doc.as_object_mut() {
        obj.remove("host");
        if let Some(scenarios) = obj.get_mut("scenarios").and_then(|s| s.as_object_mut()) {
            let names: Vec<String> = scenarios.iter().map(|(k, _)| k.clone()).collect();
            for name in names {
                if let Some(s) = scenarios.get_mut(&name).and_then(|s| s.as_object_mut()) {
                    s.remove("host");
                }
            }
        }
    }
    doc.to_string()
}

#[test]
fn quick_suite_is_bitwise_deterministic() {
    let first = run_suite("determinism", true, |_| {});
    let second = run_suite("determinism", true, |_| {});

    // Virtual + obs sections must be byte-identical across runs. The
    // serializer renders f64 leaves exactly, so text equality here is bit
    // equality of every simulated number.
    assert_eq!(
        deterministic_sections(&first.document),
        deterministic_sections(&second.document),
        "two quick-suite runs disagreed in their virtual/obs sections"
    );

    // The perf gate must agree: no drift, no regression, clean exit.
    let report = swf_metrics::compare(&first.document, &second.document, 0.10);
    assert!(
        !report.has_drift(),
        "compare reported drift between identical runs:\n{}",
        report.render()
    );
    assert!(
        report.virtual_leaves > 0,
        "compare walked no virtual leaves"
    );
    assert_eq!(report.exit_code(false), 0);

    // Sanity: the document carries all six scenarios with all four
    // sections each.
    let scenarios = first.document["scenarios"]
        .as_object()
        .expect("scenarios object");
    assert_eq!(scenarios.len(), 6);
    for (name, scenario) in scenarios.iter() {
        for section in ["virtual", "obs", "slo", "host"] {
            assert!(
                scenario.get(section).is_some(),
                "scenario {name} missing section {section}"
            );
        }
        let events = scenario["host"]["events_processed"]
            .as_u64()
            .unwrap_or_default();
        assert!(events > 0, "scenario {name} processed no events");
        // Every scenario's SLO section carries the suite spec plus one
        // evaluated report per collector, with deterministic percentiles.
        assert!(
            scenario["slo"]["spec"]["objectives"].as_array().is_some(),
            "scenario {name} slo section missing the spec"
        );
        assert!(
            scenario["slo"]["reports"]
                .as_object()
                .is_some_and(|r| !r.is_empty()),
            "scenario {name} slo section has no reports"
        );
    }
}

#[test]
fn compare_flags_injected_slo_drift() {
    let run = run_suite("slo-drift", true, |_| {});
    let mut tampered = run.document.clone();
    let slo = tampered
        .get_mut("scenarios")
        .and_then(|v| v.get_mut("fig1"))
        .and_then(|v| v.get_mut("slo"))
        .and_then(serde_json::Value::as_object_mut)
        .expect("fig1 slo section");
    slo.insert("spec", serde_json::Value::Null);
    let report = swf_metrics::compare(&run.document, &tampered, 0.10);
    assert!(report.has_drift(), "injected slo change not flagged");
    assert_eq!(report.exit_code(false), 1);
}

#[test]
fn compare_flags_injected_virtual_drift() {
    let run = run_suite("drift", true, |_| {});
    let mut tampered = run.document.clone();
    let row = tampered
        .get_mut("scenarios")
        .and_then(|v| v.get_mut("fig1"))
        .and_then(|v| v.get_mut("virtual"))
        .and_then(|v| v.get_mut("rows"))
        .and_then(serde_json::Value::as_array_mut)
        .and_then(|rows| rows.first_mut())
        .and_then(serde_json::Value::as_object_mut)
        .expect("fig1 first row");
    row.insert("docker_total", serde_json::Value::from(1.0e9));
    let report = swf_metrics::compare(&run.document, &tampered, 0.10);
    assert!(report.has_drift(), "injected virtual change not flagged");
    assert_eq!(report.exit_code(false), 1);
}
