//! Property-based tests over the integrated stack.

use proptest::prelude::*;

use swf_core::experiments::{run_once, ConcurrentParams};
use swf_core::ExperimentConfig;
use swf_workloads::EnvMix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The slowest workflow is never faster than the mean, and every
    /// makespan is positive, for arbitrary mixes and small shapes.
    #[test]
    fn slowest_dominates_mean(
        serverless_pct in 0u32..=10,
        container_pct in 0u32..=10,
        workflows in 1usize..=3,
        tasks in 1usize..=3,
    ) {
        let total = serverless_pct + container_pct;
        let (s, c) = if total > 10 {
            (serverless_pct as f64 / total as f64, container_pct as f64 / total as f64)
        } else {
            (serverless_pct as f64 / 10.0, container_pct as f64 / 10.0)
        };
        let config = ExperimentConfig::quick();
        let outcome = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix { serverless: s, container: c },
                ..ConcurrentParams::default()
            },
            1,
        );
        prop_assert_eq!(outcome.workflow_makespans.len(), workflows);
        prop_assert!(outcome.slowest >= outcome.mean - 1e-9);
        for m in &outcome.workflow_makespans {
            prop_assert!(*m > 0.0);
        }
    }

    /// Adding tasks to every workflow never reduces the slowest makespan
    /// (monotonicity of the makespan in workload size).
    #[test]
    fn makespan_monotone_in_tasks(tasks in 1usize..=2) {
        let config = ExperimentConfig::quick();
        let run = |t: usize| {
            run_once(
                &config,
                ConcurrentParams {
                    workflows: 2,
                    tasks_per_workflow: t,
                    mix: EnvMix::ALL_NATIVE,
                    ..ConcurrentParams::default()
                },
                0,
            )
            .slowest
        };
        let small = run(tasks);
        let large = run(tasks + 2);
        prop_assert!(
            large > small,
            "more tasks must take longer: {} vs {}",
            large,
            small
        );
    }
}
