//! Property-based tests over the integrated stack.

use proptest::prelude::*;

use swf_chaos::{ChaosProfile, FaultPlan, SERVICE};
use swf_core::experiments::{run_once, ConcurrentParams};
use swf_core::ExperimentConfig;
use swf_simcore::secs;
use swf_workloads::EnvMix;

/// Sample a `FaultPlan` from an arbitrary seed/profile/horizon triple —
/// the generator side of the chaos properties below.
fn sampled_plan(seed: u64, heavy: bool, horizon_s: f64) -> FaultPlan {
    let profile = if heavy {
        ChaosProfile::heavy()
    } else {
        ChaosProfile::light()
    };
    FaultPlan::sample(
        &profile,
        seed,
        secs(horizon_s),
        0,
        &[1, 2, 3],
        &[SERVICE.to_string()],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The slowest workflow is never faster than the mean, and every
    /// makespan is positive, for arbitrary mixes and small shapes.
    #[test]
    fn slowest_dominates_mean(
        serverless_pct in 0u32..=10,
        container_pct in 0u32..=10,
        workflows in 1usize..=3,
        tasks in 1usize..=3,
    ) {
        let total = serverless_pct + container_pct;
        let (s, c) = if total > 10 {
            (serverless_pct as f64 / total as f64, container_pct as f64 / total as f64)
        } else {
            (serverless_pct as f64 / 10.0, container_pct as f64 / 10.0)
        };
        let config = ExperimentConfig::quick();
        let outcome = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix { serverless: s, container: c },
                ..ConcurrentParams::default()
            },
            1,
        );
        prop_assert_eq!(outcome.workflow_makespans.len(), workflows);
        prop_assert!(outcome.slowest >= outcome.mean - 1e-9);
        for m in &outcome.workflow_makespans {
            prop_assert!(*m > 0.0);
        }
    }

    /// Adding tasks to every workflow never reduces the slowest makespan
    /// (monotonicity of the makespan in workload size).
    #[test]
    fn makespan_monotone_in_tasks(tasks in 1usize..=2) {
        let config = ExperimentConfig::quick();
        let run = |t: usize| {
            run_once(
                &config,
                ConcurrentParams {
                    workflows: 2,
                    tasks_per_workflow: t,
                    mix: EnvMix::ALL_NATIVE,
                    ..ConcurrentParams::default()
                },
                0,
            )
            .slowest
        };
        let small = run(tasks);
        let large = run(tasks + 2);
        prop_assert!(
            large > small,
            "more tasks must take longer: {} vs {}",
            large,
            small
        );
    }

    /// Sampled fault plans are always virtual-time ordered, and paired
    /// disruptions (crash/recover, partition/heal, outage start/end) never
    /// leave the stack permanently broken: every opener has a closer.
    #[test]
    fn sampled_plans_are_ordered_and_balanced(
        seed in 0u64..=1000,
        heavy_bit in 0u32..=1,
        horizon_s in 30u32..=300,
    ) {
        let plan = sampled_plan(seed, heavy_bit == 1, horizon_s as f64);
        prop_assert!(plan.is_ordered());
        prop_assert_eq!(plan.seed, seed);
        let count = |tag: &str| plan.events.iter().filter(|e| e.kind.label() == tag).count();
        prop_assert_eq!(count("node-crash"), count("node-recover"));
        prop_assert_eq!(count("condor-drain"), count("condor-resume"));
        prop_assert_eq!(count("partition"), count("heal"));
        prop_assert_eq!(count("degrade-link"), count("restore-link"));
        prop_assert_eq!(count("registry-outage-start"), count("registry-outage-end"));
    }

    /// Plans survive the JSON round trip bit-exactly (f64 parameters
    /// included) for arbitrary sampled plans.
    #[test]
    fn sampled_plans_round_trip_through_json(
        seed in 0u64..=1000,
        heavy_bit in 0u32..=1,
    ) {
        let plan = sampled_plan(seed, heavy_bit == 1, 120.0);
        let reparsed = FaultPlan::parse(&plan.to_string());
        prop_assert_eq!(Ok(&plan) == reparsed.as_ref(), true, "round trip: {:?}", reparsed);
    }

    /// Sampling is a pure function of (profile, seed, horizon): resampling
    /// replays the identical plan, and nearby seeds are not all identical
    /// (the generator actually uses its seed).
    #[test]
    fn sampling_replays_bitwise_per_seed(seed in 0u64..=500) {
        let a = sampled_plan(seed, true, 120.0);
        let b = sampled_plan(seed, true, 120.0);
        prop_assert_eq!(&a, &b);
        let neighbours: Vec<FaultPlan> =
            (0..8).map(|d| sampled_plan(seed + d, true, 120.0)).collect();
        prop_assert!(
            neighbours.iter().any(|p| p != &a),
            "8 consecutive seeds all sampled the same plan"
        );
    }
}
