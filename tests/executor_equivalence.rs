//! Differential scheduler harness: the production executor (`swf-simcore`,
//! timer wheel + slab tasks + intrusive ready list) versus the reference
//! oracle (`swf-simref`, the pre-rewrite BinaryHeap/BTreeMap/VecDeque
//! implementation, kept verbatim as a dev-dependency).
//!
//! Two layers of evidence that the rewrite is bit-exact (DESIGN.md §16):
//!
//! 1. **64-seed program sweep** — seeded random spawn/sleep/cancel/wake/
//!    yield/interval programs are interpreted on both runtimes; the full
//!    execution trace (every op's virtual timestamp in execution order),
//!    poll counts, and final clocks must be identical.
//! 2. **fig2 lockstep replay** — the complete simulation stack runs the
//!    fig2 scenario under the exact suite configuration, and every output
//!    (12 makespans + 3 regression fits) must match `f64::to_bits`-pinned
//!    golden values captured from the pre-rewrite executor.
//!
//! The interpreter is duplicated per runtime by `impl_interpreter!` because
//! the two `Sim`/`spawn`/`sleep` families are distinct types with identical
//! shapes; the wake primitive (`ManualEvent`) is runtime-agnostic so both
//! sides share one cross-task wake implementation.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use swf_simcore::DetRng;

/// One program op. Durations are raw nanoseconds so the generator controls
/// deadline collisions and wheel-level boundaries exactly.
#[derive(Clone, Debug)]
enum Op {
    /// Sleep for the given span and resume.
    Sleep(u64),
    /// Create a sleep and drop it unawaited (timer-cancellation path).
    CancelledSleep(u64),
    /// Yield once to every other ready task.
    Yield,
    /// Set a manual event, waking all its waiters.
    Set(usize),
    /// Await a manual event (cross-task wake).
    Wait(usize),
    /// Record a trace entry.
    Log,
    /// Spawn a child task (its `JoinHandle` is dropped; stragglers are
    /// drained by `run_until_idle` after `block_on` returns).
    Spawn(Box<Task>),
    /// Drive a fixed-rate `Interval` for `n` ticks of `period` ns.
    Ticks { period: u64, n: u32 },
}

#[derive(Clone, Debug)]
struct Task {
    label: u32,
    ops: Vec<Op>,
}

#[derive(Clone, Debug)]
struct Program {
    tasks: Vec<Task>,
    n_events: usize,
}

/// A coarse grid for some sleeps forces same-instant deadline collisions;
/// fine values exercise wheel slot boundaries; large values exercise the
/// upper wheel levels and the overflow cascade.
fn gen_duration(rng: &mut DetRng) -> u64 {
    match rng.uniform_u64(0, 10) {
        0 => 0,
        1..=4 => rng.uniform_u64(0, 16) * 250_000_000,
        5..=7 => rng.uniform_u64(1, 5_000_000_000),
        8 => rng.uniform_u64(1, 300) * 1_000_000_000,
        _ => rng.uniform_u64(1, 20_000) * 1_000_000_000,
    }
}

fn gen_ops(rng: &mut DetRng, n_events: usize, depth: u32, next_label: &mut u32) -> Vec<Op> {
    let n = rng.uniform_u64(2, 8) as usize;
    (0..n)
        .map(
            |_| match rng.uniform_u64(0, if depth > 0 { 16 } else { 14 }) {
                0..=3 => Op::Sleep(gen_duration(rng)),
                4..=5 => Op::CancelledSleep(gen_duration(rng).max(1)),
                6..=7 => Op::Yield,
                8..=9 => Op::Set(rng.index(n_events)),
                10..=11 => Op::Wait(rng.index(n_events)),
                12 => Op::Ticks {
                    period: rng.uniform_u64(1, 8) * 500_000_000,
                    n: rng.uniform_u64(1, 4) as u32,
                },
                13 => Op::Log,
                _ => {
                    *next_label += 1;
                    Op::Spawn(Box::new(Task {
                        label: *next_label,
                        ops: gen_ops(rng, n_events, depth - 1, next_label),
                    }))
                }
            },
        )
        .collect()
}

fn gen_program(seed: u64) -> Program {
    let mut rng = DetRng::new(seed, "executor-equivalence");
    let n_events = rng.uniform_u64(2, 6) as usize;
    let n_tasks = rng.uniform_u64(3, 10) as usize;
    let mut next_label = n_tasks as u32;
    let tasks = (0..n_tasks)
        .map(|i| Task {
            label: i as u32,
            ops: gen_ops(&mut rng, n_events, 2, &mut next_label),
        })
        .collect();
    Program { tasks, n_events }
}

/// Runtime-agnostic cross-task wake primitive: a settable flag plus a
/// waiter list. Both executors' `Waker`s flow through the same code here,
/// so any ordering difference in the resulting trace is the executor's.
struct ManualEvent {
    set: Cell<bool>,
    waiters: RefCell<Vec<Waker>>,
}

impl ManualEvent {
    fn new() -> Self {
        ManualEvent {
            set: Cell::new(false),
            waiters: RefCell::new(Vec::new()),
        }
    }

    fn set_now(&self) {
        if !self.set.replace(true) {
            for w in self.waiters.borrow_mut().drain(..) {
                w.wake();
            }
        }
    }
}

struct WaitEvent {
    ev: Rc<ManualEvent>,
}

impl Future for WaitEvent {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.ev.set.get() {
            Poll::Ready(())
        } else {
            self.ev.waiters.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// A trace entry: virtual timestamp, task label, op index within the task
/// (`u32::MAX` marks task completion). Trace *order* is part of equality:
/// two runs agree only if every op ran at the same virtual instant in the
/// same interleaving.
type TraceEntry = (u64, u32, u32);

#[derive(Clone)]
struct Ctx {
    events: Rc<Vec<Rc<ManualEvent>>>,
    trace: Rc<RefCell<Vec<TraceEntry>>>,
}

/// Everything observable about one run. `PartialEq` equality between the
/// production and reference runs is the differential assertion.
#[derive(Debug, PartialEq, Eq)]
struct RunLog {
    trace: Vec<TraceEntry>,
    block_on_finished_at: u64,
    idle_at: u64,
    steps: u64,
    spawned: u64,
}

macro_rules! impl_interpreter {
    ($module:ident, $rt:ident) => {
        mod $module {
            use super::*;
            use $rt as rt;

            fn task_future(task: Task, ctx: Ctx) -> Pin<Box<dyn Future<Output = ()>>> {
                Box::pin(async move {
                    for (i, op) in task.ops.into_iter().enumerate() {
                        match op {
                            Op::Sleep(ns) => {
                                rt::sleep(swf_simcore::SimDuration::from_nanos(ns)).await;
                            }
                            Op::CancelledSleep(ns) => {
                                let _dropped = rt::sleep(swf_simcore::SimDuration::from_nanos(ns));
                            }
                            Op::Yield => rt::yield_now().await,
                            Op::Set(e) => ctx.events[e].set_now(),
                            Op::Wait(e) => {
                                WaitEvent {
                                    ev: Rc::clone(&ctx.events[e]),
                                }
                                .await
                            }
                            Op::Log => {}
                            Op::Spawn(child) => {
                                let _detached = rt::spawn(task_future(*child, ctx.clone()));
                            }
                            Op::Ticks { period, n } => {
                                let mut iv =
                                    rt::interval(swf_simcore::SimDuration::from_nanos(period));
                                for _ in 0..n {
                                    iv.tick().await;
                                }
                            }
                        }
                        ctx.trace
                            .borrow_mut()
                            .push((rt::now().as_nanos(), task.label, i as u32));
                    }
                    ctx.trace
                        .borrow_mut()
                        .push((rt::now().as_nanos(), task.label, u32::MAX));
                })
            }

            pub fn run_program(prog: &Program) -> RunLog {
                let sim = rt::Sim::new();
                sim.set_step_limit(5_000_000);
                let ctx = Ctx {
                    events: Rc::new(
                        (0..prog.n_events)
                            .map(|_| Rc::new(ManualEvent::new()))
                            .collect(),
                    ),
                    trace: Rc::new(RefCell::new(Vec::new())),
                };
                let tasks = prog.tasks.clone();
                let root_ctx = ctx.clone();
                let finished_at = sim.block_on(async move {
                    let handles: Vec<_> = tasks
                        .into_iter()
                        .map(|t| rt::spawn(task_future(t, root_ctx.clone())))
                        .collect();
                    // Backstop: every event is eventually set, so no `Wait`
                    // can hang the program.
                    rt::sleep(swf_simcore::secs(50.0)).await;
                    for ev in root_ctx.events.iter() {
                        ev.set_now();
                    }
                    for h in handles {
                        h.await;
                    }
                    rt::now().as_nanos()
                });
                // Drain detached stragglers (dropped child handles).
                sim.run_until_idle();
                RunLog {
                    trace: Rc::try_unwrap(ctx.trace)
                        .expect("all tasks done")
                        .into_inner(),
                    block_on_finished_at: finished_at,
                    idle_at: sim.now().as_nanos(),
                    steps: sim.steps(),
                    spawned: sim.spawned_total(),
                }
            }
        }
    };
}

impl_interpreter!(production, swf_simcore);
impl_interpreter!(reference, swf_simref);

/// The headline differential sweep: 64 seeded random programs, interpreted
/// on both runtimes, asserting identical traces (virtual timestamps *and*
/// interleaving), poll counts, spawn counts, and final clocks.
#[test]
fn sixty_four_seed_differential_sweep() {
    for seed in 0..64u64 {
        let prog = gen_program(seed);
        let prod = production::run_program(&prog);
        let refr = reference::run_program(&prog);
        assert_eq!(
            prod, refr,
            "seed {seed}: production and reference executors diverged"
        );
        assert!(
            !prod.trace.is_empty(),
            "seed {seed}: degenerate program traced nothing"
        );
    }
}

/// Same program, run twice on the production executor: the trace is a pure
/// function of the program (the determinism half of the contract).
#[test]
fn production_runs_are_self_deterministic() {
    for seed in [3u64, 17, 41] {
        let prog = gen_program(seed);
        assert_eq!(
            production::run_program(&prog),
            production::run_program(&prog),
            "seed {seed}: production executor is not deterministic"
        );
    }
}

// ---------------------------------------------------------------------------
// fig2 lockstep replay
// ---------------------------------------------------------------------------

/// The fig2 scenario exactly as the bench suite runs it (quick scale,
/// tracing + telemetry series on, negotiation-bound condor config).
fn fig2_suite_result() -> swf_core::experiments::fig2::Fig2Result {
    let mut config = swf_core::ExperimentConfig::quick();
    config.matrix_dim = 32;
    config.trace = true;
    config.series_interval_s = 5.0;
    config.condor.negotiator.cycle_interval = swf_simcore::secs(5.0);
    config.condor.negotiator.activation_delay = swf_simcore::SimDuration::ZERO;
    let obs = swf_obs::Obs::enabled();
    let _guard = swf_obs::install(obs);
    swf_core::experiments::fig2::run(&config, &[4, 8, 16, 24])
}

fn fig2_outputs(r: &swf_core::experiments::fig2::Fig2Result) -> Vec<f64> {
    let mut out = Vec::new();
    for row in &r.rows {
        out.extend([row.native, row.knative, row.container]);
    }
    for fit in [&r.native_fit, &r.knative_fit, &r.container_fit] {
        out.extend([fit.slope, fit.intercept, fit.r_squared]);
    }
    out
}

/// Golden `f64::to_bits` values for every fig2 output, captured from the
/// pre-rewrite executor (BinaryHeap timers / BTreeMap tasks / VecDeque
/// ready queue) at the exact suite configuration. The production executor
/// must reproduce all of them bit for bit. Regenerate (only after an
/// *intentional* semantic change, with a fresh `suite compare` baseline)
/// via `cargo test --release --test executor_equivalence -- --ignored
/// print_fig2_golden_bits --nocapture`.
const FIG2_GOLDEN_BITS: [u64; 21] = [
    0x3fe422a2b88d60e2, // 0.629227982
    0x40000949a520c787, // 2.004534998
    0x402023966b2ab524, // 8.069506978
    0x3fe7f9acf5fe04b9, // 0.749227982
    0x4000ff0c347cf07d, // 2.124534998
    0x4028727df2d2a384, // 12.223617161
    0x401f25d721ba64eb, // 7.786953475
    0x401c940efa32a55e, // 7.144588384
    0x4035aa0367cfae3a, // 21.664114464
    0x40200dccd88b46f0, // 8.026953475
    0x401d89d1898ece53, // 7.384588384
    0x403ac300163f206b, // 26.761720076
    0x3fdbba72c4ddee10, // 0.4332549021271186
    0xbff558fa372ee634, // -1.3342229991525416
    0x3feb3143eaa3d9ce, // 0.849763830453236
    0x3fd4116866e07895, // 0.313562489
    0x3fe2d2f0446d8fa0, // 0.5882493340000003
    0x3feb6c513aff3576, // 0.8569723274501218
    0x3fee97f487fa64cc, // 0.9560492187330509
    0x401301205016972c, // 4.7510998262203366
    0x3fef7333685130d0, // 0.9828125989384038
];

#[test]
#[ignore = "golden-capture helper, run with --nocapture to print constants"]
fn print_fig2_golden_bits() {
    let r = fig2_suite_result();
    println!("const FIG2_GOLDEN_BITS: [u64; 21] = [");
    for v in fig2_outputs(&r) {
        println!("    0x{:016x}, // {v}", v.to_bits());
    }
    println!("];");
}

#[test]
fn fig2_lockstep_matches_pre_rewrite_golden() {
    let r = fig2_suite_result();
    let outputs = fig2_outputs(&r);
    assert_eq!(outputs.len(), FIG2_GOLDEN_BITS.len());
    for (i, (v, &bits)) in outputs.iter().zip(FIG2_GOLDEN_BITS.iter()).enumerate() {
        assert_eq!(
            v.to_bits(),
            bits,
            "fig2 output #{i} drifted: got {v} ({:#018x}), golden {:#018x}",
            v.to_bits(),
            bits
        );
    }
}
