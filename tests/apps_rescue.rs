//! Dynamic expansion composes with rescue DAGs: a fault injected into one
//! expanded node halts its round, the rescue DAG salvages the completed
//! expanded nodes, and resumption re-executes only the failed node — the
//! final output is bitwise equal to a clean run.

use std::cell::Cell;
use std::rc::Rc;

use swf_apps::{run_app, run_app_with, AppKind, AppRun};
use swf_pegasus::Transformation;
use swf_workloads::ExecEnv;

/// Wrap the named transformation so its first invocation fails; later
/// invocations delegate to the real kernel. Returns the invocation
/// counter.
fn inject_first_invocation_fault(
    spec: &mut swf_apps::AppSpec,
    name: &str,
    counter: Rc<Cell<usize>>,
) {
    let idx = spec
        .transformations
        .iter()
        .position(|t| t.name == name)
        .unwrap_or_else(|| panic!("no transformation {name}"));
    let old = &spec.transformations[idx];
    let old_logic = old.logic.clone();
    let mut wrapped = Transformation::new(name, old.compute, move |inputs| {
        let n = counter.get() + 1;
        counter.set(n);
        if n == 1 {
            return Err("injected fault: first invocation".into());
        }
        old_logic(inputs)
    });
    if let Some(image) = old.container_image.clone() {
        wrapped = wrapped.with_container(image);
    }
    spec.transformations[idx] = wrapped;
}

#[test]
fn chaos_interrupted_dynamic_workflow_resumes_without_reexecution() {
    let clean = run_app(&AppRun::quick(AppKind::Finra, ExecEnv::Native)).unwrap();
    assert_eq!(clean.report.nodes_salvaged, 0);

    let counter = Rc::new(Cell::new(0usize));
    let in_closure = counter.clone();
    let faulted = run_app_with(
        &AppRun::quick(AppKind::Finra, ExecEnv::Native).with_rescue(2),
        move |spec| inject_first_invocation_fault(spec, "finra-validate", in_closure),
    )
    .unwrap();

    // Quick FINRA expands to 5 validators; the first invocation failed and
    // was re-executed once on resumption. Zero re-execution of the
    // completed nodes means exactly 5 + 1 invocations.
    assert_eq!(counter.get(), 6, "only the failed node may re-execute");
    // The four validators that completed before the halt were salvaged
    // from the persisted rescue DAG.
    assert_eq!(faulted.report.nodes_salvaged, 4);
    let validate_round = &faulted.report.rounds[1];
    assert_eq!(validate_round.rescue_rounds, 1);
    assert_eq!(validate_round.jobs, 5);

    // Despite the fault, the final report is bitwise equal to a clean run
    // and the expanded DAG shape is unchanged.
    assert_eq!(faulted.output, clean.output);
    assert_eq!(
        faulted.report.shape_fingerprint(),
        clean.report.shape_fingerprint()
    );
    // The rescue wait is visible in the makespan.
    assert!(faulted.report.makespan > clean.report.makespan);
}

#[test]
fn unrescued_fault_fails_the_run_with_the_failed_node() {
    let counter = Rc::new(Cell::new(0usize));
    let in_closure = counter.clone();
    let result = run_app_with(
        &AppRun::quick(AppKind::Finra, ExecEnv::Native),
        move |spec| inject_first_invocation_fault(spec, "finra-validate", in_closure),
    );
    let err = match result {
        Ok(_) => panic!("run without rescue must fail"),
        Err(e) => e,
    };
    assert!(err.contains("halted") || err.contains("failed"), "{err}");
}

#[test]
fn rescue_also_composes_with_mapreduce_expansion() {
    let clean = run_app(&AppRun::quick(AppKind::WordCount, ExecEnv::Native)).unwrap();
    let counter = Rc::new(Cell::new(0usize));
    let in_closure = counter.clone();
    let faulted = run_app_with(
        &AppRun::quick(AppKind::WordCount, ExecEnv::Native).with_rescue(2),
        move |spec| inject_first_invocation_fault(spec, "wc-map", in_closure),
    )
    .unwrap();
    // 4 mappers, one retried after the rescue resumption.
    assert_eq!(counter.get(), 5);
    assert_eq!(faulted.report.nodes_salvaged, 3);
    assert_eq!(faulted.output, clean.output);
}
