//! Failure-injection integration tests: flaky tasks, pod churn, missing
//! data — the stack must degrade the way the real systems do.
//!
//! Infrastructure faults (pod kills, node crashes, drains) are routed
//! through `swf-chaos` [`FaultPlan`]s rather than ad-hoc API calls, so
//! these scenarios double as regression tests for the injector itself;
//! the original assertions are unchanged.

use std::cell::Cell;
use std::rc::Rc;

use bytes::Bytes;

use swf_chaos::{FaultKind, FaultPlan, Injector, Stack};
use swf_cluster::{NodeId, Request};
use swf_condor::{run_dag, DagSpec, DagmanConfig, JobContext, JobSpec};
use swf_container::Workload;
use swf_core::{ExperimentConfig, TestBed};
use swf_knative::KService;
use swf_simcore::{secs, Sim, SimDuration};

/// Apply one fault immediately through the chaos injector.
async fn inject_now(bed: &TestBed, kind: FaultKind) {
    let mut plan = FaultPlan::calm();
    plan.push(SimDuration::ZERO, kind);
    let injected = Injector::new(plan).run(Stack::of(bed), None).await;
    assert_eq!(injected, 1);
}

#[test]
fn dagman_retries_recover_transient_task_failures_at_full_stack() {
    let sim = Sim::new();
    sim.block_on(async {
        let config = ExperimentConfig::quick();
        let bed = TestBed::boot(&config);
        let attempts = Rc::new(Cell::new(0u32));
        let attempts2 = Rc::clone(&attempts);
        let flaky = JobSpec::new(move |ctx: JobContext| {
            let attempts = Rc::clone(&attempts2);
            Box::pin(async move {
                ctx.compute(secs(0.2)).await;
                attempts.set(attempts.get() + 1);
                if attempts.get() < 3 {
                    Err("transient storage error".to_string())
                } else {
                    Ok(Bytes::from_static(b"recovered"))
                }
            })
        });
        let mut dag = DagSpec::new();
        dag.add_node_with_retries("flaky", flaky, 5);
        let report = run_dag(&bed.condor, &dag, DagmanConfig::default())
            .await
            .expect("retries recover");
        assert_eq!(attempts.get(), 3);
        assert_eq!(report.jobs_submitted, 3);
        assert!(report.node_results["flaky"].success);
    });
}

#[test]
fn router_survives_pod_deletion_between_requests() {
    let sim = Sim::new();
    sim.block_on(async {
        let config = ExperimentConfig::quick();
        let bed = TestBed::boot(&config);
        bed.knative.register_fn(
            KService::new("svc", bed.image.clone()).with_min_scale(2),
            |req| {
                let b = req.body.clone();
                Workload::new(secs(0.1), move || Ok(b))
            },
        );
        bed.knative.wait_ready("svc", 2, secs(600.0)).await.unwrap();
        // Kill one backing pod behind the router's back.
        inject_now(
            &bed,
            FaultKind::PodKill {
                service: "svc".into(),
            },
        )
        .await;
        // Requests keep succeeding (ReplicaSet replaces the pod; the router
        // retries around endpoints that disappear mid-flight).
        for i in 0..6u8 {
            let resp = bed
                .knative
                .invoke(NodeId(0), "svc", Request::post("/", Bytes::from(vec![i])))
                .await
                .expect("invocation survives churn");
            assert_eq!(&resp.body[..], &[i]);
        }
        // The deployment heals back to min-scale.
        swf_simcore::sleep(secs(60.0)).await;
        assert!(bed.knative.ready_pods("svc") >= 2);
    });
}

#[test]
fn node_failure_fails_over_function_pods_and_service_recovers() {
    let sim = Sim::new();
    sim.block_on(async {
        let config = ExperimentConfig::quick();
        let bed = TestBed::boot(&config);
        bed.knative.register_fn(
            KService::new("resilient", bed.image.clone()).with_min_scale(2),
            |req| {
                let b = req.body.clone();
                Workload::new(secs(0.1), move || Ok(b))
            },
        );
        bed.knative
            .wait_ready("resilient", 2, secs(600.0))
            .await
            .unwrap();
        // Find a node hosting one of the function pods and kill it.
        let victim_node = bed
            .k8s
            .api()
            .pods()
            .list()
            .into_iter()
            .find_map(|p| {
                p.meta
                    .labels
                    .contains_key("serving.knative.dev/revision")
                    .then_some(p.status.node)
                    .flatten()
            })
            .expect("a function pod is placed");
        inject_now(
            &bed,
            FaultKind::NodeCrash {
                node: victim_node.0,
            },
        )
        .await;
        assert!(!bed.k8s.node_is_ready(victim_node));
        // Let the node controller fail the stranded pods, then wait for the
        // ReplicaSet to replace them on healthy nodes.
        swf_simcore::sleep(secs(1.0)).await;
        bed.knative
            .wait_ready("resilient", 2, secs(600.0))
            .await
            .unwrap();
        let endpoints_nodes: Vec<_> = {
            let rev = bed.knative.revisions().get("resilient-00001").unwrap();
            bed.k8s
                .api()
                .endpoints()
                .get(&rev.k8s_service_name())
                .unwrap()
                .ready
                .iter()
                .map(|e| e.node)
                .collect()
        };
        assert!(
            !endpoints_nodes.contains(&victim_node),
            "no routable endpoint may remain on the dead node"
        );
        // Invocations keep succeeding throughout.
        for i in 0..4u8 {
            let resp = bed
                .knative
                .invoke(
                    NodeId(0),
                    "resilient",
                    Request::post("/", Bytes::from(vec![i])),
                )
                .await
                .expect("service survives node loss");
            assert_eq!(&resp.body[..], &[i]);
        }
        // Recovery: the node can host pods again.
        inject_now(
            &bed,
            FaultKind::NodeRecover {
                node: victim_node.0,
            },
        )
        .await;
        assert!(bed.k8s.node_is_ready(victim_node));
    });
}

#[test]
fn missing_staged_input_fails_cleanly_with_diagnostics() {
    let sim = Sim::new();
    sim.block_on(async {
        let config = ExperimentConfig::quick();
        let bed = TestBed::boot(&config);
        let job = JobSpec::new(|_ctx| Box::pin(async { Ok(Bytes::new()) }))
            .with_inputs(vec!["never-staged.mat".into()]);
        let result = bed.condor.submit_and_wait(job).await.unwrap();
        assert!(!result.success);
        assert!(
            String::from_utf8_lossy(&result.output).contains("missing input"),
            "{:?}",
            result.output
        );
    });
}

#[test]
fn draining_a_condor_worker_mid_workflow_still_completes() {
    let sim = Sim::new();
    sim.block_on(async {
        let config = ExperimentConfig::quick();
        let bed = TestBed::boot(&config);
        let victim = bed.condor.startds()[0].node().id();
        // A batch of compute jobs; drain one worker while they queue.
        let mk = || {
            JobSpec::new(|ctx: JobContext| {
                Box::pin(async move {
                    ctx.compute(secs(0.3)).await;
                    Ok(Bytes::from_static(b"done"))
                })
            })
        };
        inject_now(&bed, FaultKind::CondorDrain { node: victim.0 }).await;
        assert!(!bed.condor.drain_node(swf_cluster::NodeId(99)));
        let ids: Vec<_> = (0..12).map(|_| bed.condor.submit(mk())).collect();
        for id in ids {
            let r = bed.condor.wait(id).await.unwrap();
            assert!(r.success);
            assert_ne!(r.node, victim, "drained node must not run new jobs");
        }
        assert!(bed.condor.undrain_node(victim));
    });
}

#[test]
fn function_error_fails_the_workflow_task_not_the_platform() {
    let sim = Sim::new();
    sim.block_on(async {
        let config = ExperimentConfig::quick();
        let bed = TestBed::boot(&config);
        bed.knative.register_fn(
            KService::new("faulty", bed.image.clone()).with_min_scale(1),
            |_req| Workload::new(secs(0.05), || Err("simulated numerical failure".into())),
        );
        bed.knative
            .wait_ready("faulty", 1, secs(600.0))
            .await
            .unwrap();
        let err = bed
            .knative
            .invoke(NodeId(0), "faulty", Request::get("/"))
            .await
            .unwrap_err();
        assert!(err.to_string().contains("numerical failure"));
        // The platform is still healthy: a good service works right after.
        bed.knative.register_fn(
            KService::new("good", bed.image.clone()).with_min_scale(1),
            |req| {
                let b = req.body.clone();
                Workload::new(secs(0.05), move || Ok(b))
            },
        );
        bed.knative
            .wait_ready("good", 1, secs(600.0))
            .await
            .unwrap();
        let resp = bed
            .knative
            .invoke(
                NodeId(0),
                "good",
                Request::post("/", Bytes::from_static(b"ok")),
            )
            .await
            .unwrap();
        assert_eq!(&resp.body[..], b"ok");
    });
}
