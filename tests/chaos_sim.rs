//! Seed-sweep simulation testing: for a pool of seeds, run the
//! concurrent-workflow experiment under a sampled chaos profile and hold
//! whole-stack invariants. A failing seed panics with its full
//! [`FaultPlan`] JSON, so the run is replayable in isolation with
//! `FaultPlan::parse` — no log spelunking required.
//!
//! The invariants per seed:
//!
//! 1. **Liveness**: every workflow either completes or surfaces a typed
//!    error; the simulation itself never deadlocks (`Sim::block_on`
//!    panics on lost wakeups, so mere test completion proves this).
//! 2. **Monotonicity**: when every workflow still completes, faults must
//!    not make the batch *faster* than the calm baseline (all jitter
//!    streams are zeroed in the chaos experiment config, so this is
//!    structural, not statistical).
//! 3. **Reproducibility**: a second run of the same seed fingerprints
//!    bitwise-identically (makespan bits included).
//! 4. **Byte conservation**: bytes the registry served equal the sum of
//!    the per-node pull ledger, outages notwithstanding.

use swf_chaos::{run_chaos, ChaosOutcome, ChaosProfile, ChaosRunConfig, FaultPlan, SERVICE};
use swf_simcore::secs;

/// Seeds swept by the main test. CI pins the same range.
const SEEDS: std::ops::Range<u64> = 0..32;

/// Virtual-time horizon faults are sampled over — generously past the
/// quick experiment's calm makespan so late-workflow faults occur too.
fn light_plan(seed: u64) -> FaultPlan {
    FaultPlan::sample(
        &ChaosProfile::light(),
        seed,
        secs(120.0),
        0,
        &[1, 2, 3],
        &[SERVICE.to_string()],
    )
}

fn run(seed: u64, plan: &FaultPlan) -> ChaosOutcome {
    let cfg = ChaosRunConfig::quick(seed);
    match run_chaos(&cfg, plan) {
        Ok(outcome) => outcome,
        Err(e) => panic!(
            "seed {seed}: harness error: {e}\nreplay this plan:\n{}",
            plan.to_json()
        ),
    }
}

#[test]
fn seed_sweep_holds_stack_invariants_under_light_chaos() {
    for seed in SEEDS {
        let plan = light_plan(seed);
        let calm = run(seed, &FaultPlan::calm());
        assert!(
            calm.all_completed(),
            "seed {seed}: calm baseline must complete"
        );
        let chaos = run(seed, &plan);

        // Invariant 1: typed outcomes only (completion of block_on already
        // ruled out lost wakeups / deadlock).
        for (w, outcome) in chaos.outcomes.iter().enumerate() {
            if let swf_chaos::WorkflowOutcome::Failed { error } = outcome {
                assert!(
                    !error.is_empty(),
                    "seed {seed}: workflow {w} failed without a typed error\nreplay this plan:\n{}",
                    plan.to_json()
                );
            }
        }

        // Invariant 2: faults never speed the batch up.
        if chaos.all_completed() {
            assert!(
                chaos.makespan >= calm.makespan,
                "seed {seed}: chaos makespan {:?} < calm {:?}\nreplay this plan:\n{}",
                chaos.makespan,
                calm.makespan,
                plan.to_json()
            );
        }

        // Invariant 3: bitwise-reproducible replay.
        let replay = run(seed, &plan);
        assert_eq!(
            chaos.fingerprint(),
            replay.fingerprint(),
            "seed {seed}: replay diverged\nreplay this plan:\n{}",
            plan.to_json()
        );
        assert_eq!(
            chaos.makespan.as_secs_f64().to_bits(),
            replay.makespan.as_secs_f64().to_bits(),
            "seed {seed}: replay makespan bits diverged\nreplay this plan:\n{}",
            plan.to_json()
        );

        // Invariant 4: registry byte conservation.
        let ledger: u64 = chaos.registry_ledger.iter().map(|(_, b)| *b).sum();
        assert_eq!(
            ledger,
            chaos.registry_bytes_served,
            "seed {seed}: registry ledger {} != bytes served {}\nreplay this plan:\n{}",
            ledger,
            chaos.registry_bytes_served,
            plan.to_json()
        );
    }
}

#[test]
fn sweep_actually_exercises_faults_and_failures() {
    // Meta-check on the sweep itself: across the seed pool the sampled
    // plans must inject a healthy number of faults and at least one seed
    // must experience an injected task failure — otherwise the sweep is
    // vacuous and the invariants above test nothing.
    let mut injected = 0u64;
    let mut task_failures = 0u64;
    for seed in SEEDS {
        let chaos = run(seed, &light_plan(seed));
        injected += chaos.injected;
        task_failures += chaos.task_failures;
    }
    assert!(
        injected >= SEEDS.end - SEEDS.start,
        "expected at least one injection per seed on average, got {injected}"
    );
    assert!(
        task_failures > 0,
        "no seed in the pool ever tripped a flaky-task window"
    );
}

#[test]
fn calm_seed_is_bitwise_stable_and_injects_nothing() {
    let a = run(7, &FaultPlan::calm());
    let b = run(7, &FaultPlan::calm());
    assert!(a.all_completed());
    assert_eq!(a.injected, 0);
    assert_eq!(a.task_failures, 0);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn failing_plans_replay_from_their_printed_json() {
    // The debugging loop the sweep promises: print the plan, parse it
    // back, get the identical run.
    let plan = light_plan(11);
    let reparsed = FaultPlan::parse(&plan.to_string()).expect("plan JSON parses");
    assert_eq!(plan, reparsed);
    let original = run(11, &plan);
    let replayed = run(11, &reparsed);
    assert_eq!(original.fingerprint(), replayed.fingerprint());
}
