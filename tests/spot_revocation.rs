//! Revocation-during-drain sweep: the hardest corner of the graceful
//! spot path. Each seed hand-authors a fault plan where a spot node gets
//! its revocation notice and — while its grace window is still draining
//! — a *second* fault crashes the other spot worker outright. The drain
//! protocol and the PR-4/PR-5 crash-plus-rescue machinery must compose:
//! every seed completes every workflow, nothing re-executes, salvaged
//! outputs stay bit-identical, and the whole run replays bitwise.
//!
//! A failing seed panics with its full [`FaultPlan`] JSON so the run is
//! replayable in isolation; CI's elasticity job archives those plans.

use swf_chaos::{FaultKind, FaultPlan};
use swf_elastic::{run_elastic, ElasticOutcome, ElasticRunConfig};
use swf_simcore::secs;

/// Seeds swept. CI's elasticity job pins the same range.
const SEEDS: std::ops::Range<u64> = 0..32;

/// The hand-authored storm: a spot revocation with an 8 s grace window,
/// a node crash landing inside that window on the *other* spot worker,
/// and recoveries for both. Timing offsets vary with the seed so the
/// sweep covers notices early and late in the burst.
fn revocation_during_drain_plan(seed: u64) -> FaultPlan {
    let revoked = 2 + (seed % 2) as usize; // spot pool is {2, 3}
    let crashed = 5 - revoked; // the other spot worker
    let notice = secs(5.0 + (seed % 7) as f64);
    let grace = secs(8.0);
    let second = notice + secs(2.0 + (seed % 5) as f64); // < notice + grace
    let mut plan = FaultPlan::calm();
    plan.push(
        notice,
        FaultKind::SpotRevoke {
            node: revoked,
            grace,
        },
    );
    plan.push(second, FaultKind::NodeCrash { node: crashed });
    plan.push(
        second + secs(15.0),
        FaultKind::NodeRecover { node: crashed },
    );
    plan.push(
        notice + grace + secs(12.0),
        FaultKind::NodeRecover { node: revoked },
    );
    plan
}

fn run(seed: u64, plan: &FaultPlan) -> ElasticOutcome {
    let cfg = ElasticRunConfig::burst(seed);
    match run_elastic(&cfg, plan) {
        Ok(outcome) => outcome,
        Err(e) => panic!(
            "seed {seed}: harness error: {e}\nreplay this plan:\n{}",
            plan.to_json()
        ),
    }
}

#[test]
fn revocation_during_drain_sweep_completes_every_seed_without_reexecution() {
    for seed in SEEDS {
        let plan = revocation_during_drain_plan(seed);
        let out = run(seed, &plan);
        assert!(
            out.chaos.all_completed(),
            "seed {seed}: {}/{} workflows completed; final rescue DAGs: {:?}\n\
             replay this plan:\n{}",
            out.chaos.completed(),
            out.chaos.outcomes.len(),
            out.chaos.rescue_dags,
            plan.to_json()
        );
        assert_eq!(
            out.chaos.goodput.reexecuted_nodes,
            0,
            "seed {seed}: a salvaged node re-executed\nreplay this plan:\n{}",
            plan.to_json()
        );
        assert_eq!(
            out.chaos.goodput.output_mismatches,
            0,
            "seed {seed}: a salvaged output was not bit-identical\nreplay this plan:\n{}",
            plan.to_json()
        );
        // The run was actually disrupted — both faults injected — and
        // still billed sensibly.
        assert!(out.chaos.injected >= 2, "seed {seed}: storm was vacuous");
        assert!(out.cost.dollars() > 0.0, "seed {seed}: nothing billed");
    }
}

#[test]
fn revocation_during_drain_replays_bitwise_per_seed() {
    for seed in [1, 14, 27] {
        let plan = revocation_during_drain_plan(seed);
        let a = run(seed, &plan);
        let b = run(seed, &plan);
        assert_eq!(
            a.chaos.fingerprint(),
            b.chaos.fingerprint(),
            "seed {seed}: replay diverged\nreplay this plan:\n{}",
            plan.to_json()
        );
        assert_eq!(
            a.cost.dollars().to_bits(),
            b.cost.dollars().to_bits(),
            "seed {seed}: the bill diverged across replays"
        );
        assert_eq!(
            a.chaos.goodput, b.chaos.goodput,
            "seed {seed}: goodput diverged"
        );
    }
}
