//! Cross-environment equivalence and expansion determinism for swf-apps.
//!
//! Every application must produce bitwise-identical final outputs whether
//! its jobs run native, in per-job containers, or as Knative functions;
//! dynamic expansion must be a pure function of the input data (same seed
//! → same DAG shape, different input size → different shape under the
//! same plan).

use swf_apps::{build_app, run_app, AppKind, AppRun};
use swf_workloads::ExecEnv;

const ENVS: [ExecEnv; 3] = [ExecEnv::Native, ExecEnv::Container, ExecEnv::Serverless];

/// All four apps complete in all three environments with bitwise-equal
/// final outputs, and every app demonstrably expands at runtime.
#[test]
fn apps_are_bitwise_equal_across_environments() {
    for kind in AppKind::ALL {
        let mut outcomes = Vec::new();
        for env in ENVS {
            let outcome = run_app(&AppRun::quick(kind, env))
                .unwrap_or_else(|e| panic!("{kind} in {env}: {e}"));
            assert!(
                !outcome.report.expansions.is_empty(),
                "{kind} in {env}: no runtime expansion happened"
            );
            assert!(outcome.report.rounds.len() >= 2, "{kind} in {env}");
            outcomes.push((env, outcome));
        }
        let (_, reference) = &outcomes[0];
        for (env, outcome) in &outcomes[1..] {
            assert_eq!(
                outcome.output, reference.output,
                "{kind}: {env} output differs from native"
            );
            assert_eq!(outcome.output_fingerprint, reference.output_fingerprint);
            // The expanded DAG shape is also venue-independent.
            assert_eq!(
                outcome.report.shape_fingerprint(),
                reference.report.shape_fingerprint(),
                "{kind}: {env} expanded to a different DAG shape"
            );
        }
    }
}

/// Two runs with the same seed expand to the same DAG (shape fingerprint
/// and output fingerprint both match bit for bit).
#[test]
fn dynamic_expansion_is_deterministic_across_runs() {
    for kind in [AppKind::Finra, AppKind::WordCount] {
        let run = AppRun::quick(kind, ExecEnv::Native);
        let a = run_app(&run).unwrap();
        let b = run_app(&run).unwrap();
        assert_eq!(a.report.shape, b.report.shape, "{kind}");
        assert_eq!(a.report.shape_fingerprint(), b.report.shape_fingerprint());
        assert_eq!(a.output_fingerprint, b.output_fingerprint, "{kind}");
        assert_eq!(a.report.makespan, b.report.makespan, "{kind}");
    }
}

/// The fan-out is provably derived from the input data: a bigger input
/// expands into a different (wider) DAG under the exact same plan, and the
/// expansion degree matches what the data dictates.
#[test]
fn different_inputs_yield_different_dag_shapes() {
    // FINRA quick: 300 trades / 64 per shard → 5 validators.
    let finra = run_app(&AppRun::quick(AppKind::Finra, ExecEnv::Native)).unwrap();
    let fanout = finra
        .report
        .expansions
        .iter()
        .find(|e| e.trigger == "fanout-validate")
        .expect("finra fired its fan-out trigger");
    assert_eq!(fanout.jobs_added, 5, "300 trades / 64 per shard");

    // Same plan, doubled feed: the trigger must derive 10 validators.
    let mut big = AppRun::quick(AppKind::Finra, ExecEnv::Native);
    big.seed += 1;
    let bigger = swf_apps::run_app_with(&big, |spec| {
        let params = swf_apps::finra::FinraParams {
            trades: 600,
            shard: 64,
            env: ExecEnv::Native,
        };
        spec.inputs = swf_apps::finra::generate_feed(&params, 42);
    })
    .unwrap();
    let big_fanout = bigger
        .report
        .expansions
        .iter()
        .find(|e| e.trigger == "fanout-validate")
        .unwrap();
    assert_eq!(big_fanout.jobs_added, 10, "600 trades / 64 per shard");
    assert_ne!(
        finra.report.shape_fingerprint(),
        bigger.report.shape_fingerprint(),
        "bigger input must expand to a different DAG shape"
    );

    // Word count: 400 words / 100 per map → 4 mappers; reducer fan-in
    // follows the mapper count.
    let wc = run_app(&AppRun::quick(AppKind::WordCount, ExecEnv::Native)).unwrap();
    let map = wc
        .report
        .expansions
        .iter()
        .find(|e| e.trigger == "fanout-map")
        .unwrap();
    assert_eq!(map.jobs_added, 4, "400 words / 100 per map");
    let reduce_inputs = wc
        .report
        .shape
        .iter()
        .filter(|l| l.contains(" reduce-00 "))
        .count();
    assert_eq!(reduce_inputs, 1);
}

/// The built specs themselves are deterministic: building twice yields the
/// same staged input bytes.
#[test]
fn app_inputs_are_seed_deterministic() {
    for kind in AppKind::ALL {
        let a = build_app(kind, ExecEnv::Native, 7, true);
        let b = build_app(kind, ExecEnv::Native, 7, true);
        assert_eq!(a.inputs, b.inputs, "{kind}");
        let c = build_app(kind, ExecEnv::Native, 8, true);
        assert_ne!(a.inputs, c.inputs, "{kind}: seed must matter");
    }
}
