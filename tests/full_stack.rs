//! Cross-crate integration tests: the whole stack — Pegasus planning,
//! DAGMan, HTCondor matchmaking, Kubernetes, Knative, container runtime —
//! executing real matrix workflows end to end.

use std::rc::Rc;

use swf_core::{
    matmul_transformation, register_matmul, stage_chain_workflow, ContainerStaging,
    ExperimentConfig, IntegratedFactory, Provisioning, TestBed,
};
use swf_pegasus::{Pegasus, PlanOptions, ReplicaLocation};
use swf_simcore::{secs, Sim};
use swf_workloads::{chain_workflow, decode, matmul, ChainWorkflow, EnvMix, Kernel, Matrix};

/// Run one chain workflow through the integrated stack; returns
/// (makespan seconds, final product, expected product).
fn run_chain(
    config: &ExperimentConfig,
    mix: EnvMix,
    length: usize,
    plan_options: PlanOptions,
) -> (f64, Matrix, Matrix) {
    let sim = Sim::new();
    let config = config.clone();
    sim.block_on(async move {
        let bed = TestBed::boot(&config);
        let tarball = bed.stage_image_tarball();
        register_matmul(&bed.knative, &config);
        if config.provisioning == Provisioning::PreStage {
            bed.knative
                .wait_ready("matmul", config.min_scale as usize, secs(3600.0))
                .await
                .unwrap();
        }
        let pegasus = Rc::new(
            Pegasus::new(bed.condor.clone())
                .with_dagman(config.dagman)
                .with_plan_options(plan_options),
        );
        pegasus
            .transformations()
            .register(matmul_transformation(&config));
        pegasus
            .replicas()
            .register(&tarball, ReplicaLocation::SharedFs(tarball.clone()));
        let mut rng = swf_simcore::DetRng::new(99, "itest");
        let chain: ChainWorkflow = chain_workflow(0, length, mix, &mut rng);
        let wf = stage_chain_workflow(&bed.cluster, pegasus.replicas(), &chain, &config);
        let factory = IntegratedFactory::new(
            bed.knative.clone(),
            bed.k8s.clone(),
            bed.image.clone(),
            config.container_staging,
            Some(tarball),
        )
        .with_serialization_rate(config.serialization_rate);
        let (stats, _report) = pegasus.run(&wf, &factory).await.unwrap();

        // Recompute the expected final product from the staged seeds.
        let mut expected = decode(
            bed.cluster
                .shared_fs()
                .read(&chain.tasks[0].input_a)
                .await
                .unwrap(),
        )
        .unwrap();
        for t in &chain.tasks {
            let b = decode(bed.cluster.shared_fs().read(&t.input_b).await.unwrap()).unwrap();
            expected = matmul(&expected, &b, Kernel::Blocked);
        }
        let got = decode(
            bed.cluster
                .shared_fs()
                .read(&chain.tasks.last().unwrap().output)
                .await
                .unwrap(),
        )
        .unwrap();
        (stats.makespan.as_secs_f64(), got, expected)
    })
}

#[test]
fn mixed_venues_compute_identical_results() {
    let config = ExperimentConfig::quick();
    let (_m, got, expected) = run_chain(
        &config,
        EnvMix {
            serverless: 0.4,
            container: 0.3,
        },
        5,
        PlanOptions::default(),
    );
    assert_eq!(got, expected);
}

#[test]
fn task_clustering_preserves_results_and_reduces_jobs() {
    let config = ExperimentConfig::quick();
    // Clustered: 6 tasks → 2 jobs of 3 (paper §IX-C task resizing).
    let (clustered_makespan, got, expected) = run_chain(
        &config,
        EnvMix::ALL_NATIVE,
        6,
        PlanOptions {
            cluster_level: 3,
            retries: 0,
        },
    );
    assert_eq!(got, expected);
    let (unclustered_makespan, got2, expected2) =
        run_chain(&config, EnvMix::ALL_NATIVE, 6, PlanOptions::default());
    assert_eq!(got2, expected2);
    // Fewer scheduling rounds → faster workflow.
    assert!(
        clustered_makespan < unclustered_makespan,
        "clustered {clustered_makespan:.1}s vs unclustered {unclustered_makespan:.1}s"
    );
}

#[test]
fn deferred_provisioning_pays_cold_start_but_completes() {
    let mut config = ExperimentConfig::quick();
    config.provisioning = Provisioning::Deferred;
    let (makespan, got, expected) =
        run_chain(&config, EnvMix::ALL_SERVERLESS, 3, PlanOptions::default());
    assert_eq!(got, expected);
    assert!(makespan > 0.0);
}

#[test]
fn cached_image_staging_beats_per_job_staging() {
    let mut per_job = ExperimentConfig::quick();
    per_job.container_staging = ContainerStaging::PerJob;
    let (m_per_job, got1, exp1) =
        run_chain(&per_job, EnvMix::ALL_CONTAINER, 4, PlanOptions::default());
    assert_eq!(got1, exp1);

    let mut cached = ExperimentConfig::quick();
    cached.container_staging = ContainerStaging::PullIfMissing;
    let (m_cached, got2, exp2) =
        run_chain(&cached, EnvMix::ALL_CONTAINER, 4, PlanOptions::default());
    assert_eq!(got2, exp2);

    assert!(
        m_cached < m_per_job,
        "cached {m_cached:.1}s vs per-job {m_per_job:.1}s"
    );
}

#[test]
fn whole_figure_pipeline_is_deterministic() {
    let config = ExperimentConfig::quick();
    let a = run_chain(&config, EnvMix::HALF_SERVERLESS, 4, PlanOptions::default());
    let b = run_chain(&config, EnvMix::HALF_SERVERLESS, 4, PlanOptions::default());
    assert_eq!(a.0, b.0, "same seed, same makespan");
    assert_eq!(a.1, b.1);
}
