//! Whole-stack determinism: two fresh simulations with the same seeds must
//! reproduce every observable — makespans, per-workflow timings, network
//! byte counts and container lifecycle counters — bit for bit.

use swf_core::experiments::{run_once, ConcurrentParams};
use swf_core::{ExperimentConfig, TestBed};
use swf_simcore::{secs, Sim};
use swf_workloads::EnvMix;

#[test]
fn concurrent_experiment_is_bit_reproducible() {
    let config = ExperimentConfig::quick();
    let params = ConcurrentParams {
        workflows: 3,
        tasks_per_workflow: 3,
        mix: EnvMix {
            serverless: 0.4,
            container: 0.3,
        },
        ..ConcurrentParams::default()
    };
    let a = run_once(&config, params, 5);
    let b = run_once(&config, params, 5);
    assert_eq!(a.workflow_makespans, b.workflow_makespans);
    assert_eq!(a.slowest, b.slowest);
}

#[test]
fn different_reps_actually_differ() {
    let config = ExperimentConfig::quick();
    let params = ConcurrentParams {
        workflows: 3,
        tasks_per_workflow: 3,
        mix: EnvMix::ALL_SERVERLESS,
        ..ConcurrentParams::default()
    };
    let a = run_once(&config, params, 0);
    let b = run_once(&config, params, 1);
    // Different repetition seeds redraw jitter and assignments.
    assert_ne!(
        a.workflow_makespans, b.workflow_makespans,
        "distinct reps should not coincide exactly"
    );
}

#[test]
fn testbed_boot_is_reproducible_to_the_byte() {
    let observe = || {
        let sim = Sim::new();
        sim.block_on(async {
            let config = ExperimentConfig::quick();
            let bed = TestBed::boot(&config);
            swf_core::register_matmul(&bed.knative, &config);
            bed.knative.wait_ready("matmul", 1, secs(600.0)).await.unwrap();
            (
                swf_simcore::now().as_nanos(),
                bed.cluster.network().bytes_moved(),
                bed.registry.bytes_served(),
                bed.k8s.api().pods().len(),
            )
        })
    };
    let a = observe();
    let b = observe();
    assert_eq!(a, b);
}

#[test]
fn seed_changes_propagate_everywhere() {
    let run = |seed: u64| {
        let mut config = ExperimentConfig::quick();
        config.seed = seed;
        run_once(
            &config,
            ConcurrentParams {
                workflows: 2,
                tasks_per_workflow: 3,
                mix: EnvMix::ALL_NATIVE,
                ..ConcurrentParams::default()
            },
            0,
        )
        .slowest
    };
    // Different seeds → different jitter draws → different makespans.
    assert_ne!(run(1), run(2));
}
