//! Whole-stack determinism: two fresh simulations with the same seeds must
//! reproduce every observable — makespans, per-workflow timings, network
//! byte counts and container lifecycle counters — bit for bit.

use swf_core::experiments::{run_once, ConcurrentParams};
use swf_core::{ExperimentConfig, TestBed};
use swf_simcore::{secs, Sim};
use swf_workloads::EnvMix;

#[test]
fn concurrent_experiment_is_bit_reproducible() {
    let config = ExperimentConfig::quick();
    let params = ConcurrentParams {
        workflows: 3,
        tasks_per_workflow: 3,
        mix: EnvMix {
            serverless: 0.4,
            container: 0.3,
        },
        ..ConcurrentParams::default()
    };
    let a = run_once(&config, params, 5);
    let b = run_once(&config, params, 5);
    assert_eq!(a.workflow_makespans, b.workflow_makespans);
    assert_eq!(a.slowest, b.slowest);
}

#[test]
fn different_reps_actually_differ() {
    let config = ExperimentConfig::quick();
    let params = ConcurrentParams {
        workflows: 3,
        tasks_per_workflow: 3,
        mix: EnvMix::ALL_SERVERLESS,
        ..ConcurrentParams::default()
    };
    let a = run_once(&config, params, 0);
    let b = run_once(&config, params, 1);
    // Different repetition seeds redraw jitter and assignments.
    assert_ne!(
        a.workflow_makespans, b.workflow_makespans,
        "distinct reps should not coincide exactly"
    );
}

#[test]
fn testbed_boot_is_reproducible_to_the_byte() {
    let observe = || {
        let sim = Sim::new();
        sim.block_on(async {
            let config = ExperimentConfig::quick();
            let bed = TestBed::boot(&config);
            swf_core::register_matmul(&bed.knative, &config);
            bed.knative
                .wait_ready("matmul", 1, secs(600.0))
                .await
                .unwrap();
            (
                swf_simcore::now().as_nanos(),
                bed.cluster.network().bytes_moved(),
                bed.registry.bytes_served(),
                bed.k8s.api().pods().len(),
            )
        })
    };
    let a = observe();
    let b = observe();
    assert_eq!(a, b);
}

#[test]
fn traced_fig6_scenario_is_bit_reproducible() {
    // A fig6-style mixed run with tracing on: the span tree and the derived
    // critical-path breakdown must come out byte-identical across two fresh
    // simulations, not just the scalar makespans.
    let run = || {
        let mut config = ExperimentConfig::quick();
        config.trace = true;
        let params = ConcurrentParams {
            workflows: 3,
            tasks_per_workflow: 3,
            mix: EnvMix {
                serverless: 0.4,
                container: 0.3,
            },
            ..ConcurrentParams::default()
        };
        run_once(&config, params, 2)
    };
    let a = run();
    let b = run();
    assert_eq!(a.workflow_makespans, b.workflow_makespans);

    let spans_a = a.obs.spans();
    let spans_b = b.obs.spans();
    assert!(!spans_a.is_empty(), "tracing enabled but no spans recorded");
    let tree = |spans: &[swf_obs::Span]| format!("{spans:#?}");
    assert_eq!(
        tree(&spans_a),
        tree(&spans_b),
        "span trees must be byte-identical across reruns"
    );

    let bd_a = swf_core::slowest_workflow_breakdown(&a.obs).expect("breakdown");
    let bd_b = swf_core::slowest_workflow_breakdown(&b.obs).expect("breakdown");
    assert_eq!(bd_a, bd_b, "critical-path breakdowns must match");
    assert_eq!(bd_a.render_breakdown(), bd_b.render_breakdown());
}

#[test]
fn tracing_does_not_perturb_virtual_time() {
    // Spans are pure annotation: the same scenario with tracing on and off
    // must produce identical makespans to the last bit.
    let run = |trace: bool| {
        let mut config = ExperimentConfig::quick();
        config.trace = trace;
        run_once(
            &config,
            ConcurrentParams {
                workflows: 3,
                tasks_per_workflow: 3,
                mix: EnvMix {
                    serverless: 0.4,
                    container: 0.3,
                },
                ..ConcurrentParams::default()
            },
            1,
        )
    };
    let traced = run(true);
    let plain = run(false);
    assert_eq!(traced.workflow_makespans, plain.workflow_makespans);
    assert_eq!(traced.slowest, plain.slowest);
    assert_eq!(plain.obs.span_count(), 0);
}

#[test]
fn seed_changes_propagate_everywhere() {
    let run = |seed: u64| {
        let mut config = ExperimentConfig::quick();
        config.seed = seed;
        run_once(
            &config,
            ConcurrentParams {
                workflows: 2,
                tasks_per_workflow: 3,
                mix: EnvMix::ALL_NATIVE,
                ..ConcurrentParams::default()
            },
            0,
        )
        .slowest
    };
    // Different seeds → different jitter draws → different makespans.
    assert_ne!(run(1), run(2));
}
