//! The self-healing seed sweep: the concurrent-workflow experiment under
//! the *heavy* chaos profile, with rescue-resume armed. Without rescue
//! mode some heavy seeds fail outright (that contrast is the goodput
//! story in EXPERIMENTS.md); with it, every seed must complete every
//! workflow, and the sweep proves the two properties the rescue-DAG
//! design promises:
//!
//! 1. **Zero re-execution**: once a rescue DAG records a node done, its
//!    execution counter never moves again across resume rounds.
//! 2. **Bit-identical salvage**: the outputs a rescue carried are exactly
//!    the bytes the final report attributes to those nodes.
//!
//! A failing seed panics with its full [`FaultPlan`] JSON so the run is
//! replayable in isolation, and its final rescue DAGs ride along in the
//! outcome for CI to upload as artifacts.

use swf_chaos::{run_chaos, ChaosOutcome, ChaosProfile, ChaosRunConfig, FaultPlan, SERVICE};
use swf_simcore::secs;

/// Seeds swept. CI's recovery job pins the same range.
const SEEDS: std::ops::Range<u64> = 0..32;

fn heavy_plan(seed: u64) -> FaultPlan {
    FaultPlan::sample(
        &ChaosProfile::heavy(),
        seed,
        secs(120.0),
        0,
        &[1, 2, 3],
        &[SERVICE.to_string()],
    )
}

fn run(cfg: &ChaosRunConfig, plan: &FaultPlan) -> ChaosOutcome {
    match run_chaos(cfg, plan) {
        Ok(outcome) => outcome,
        Err(e) => panic!(
            "seed {}: harness error: {e}\nreplay this plan:\n{}",
            cfg.seed,
            plan.to_json()
        ),
    }
}

#[test]
fn heavy_seed_sweep_completes_every_workflow_via_rescue_resume() {
    let mut rescued_somewhere = false;
    for seed in SEEDS {
        let plan = heavy_plan(seed);
        let out = run(&ChaosRunConfig::rescue(seed), &plan);
        assert!(
            out.all_completed(),
            "seed {seed}: {}/{} workflows completed under rescue-resume; \
             final rescue DAGs: {:?}\nreplay this plan:\n{}",
            out.completed(),
            out.outcomes.len(),
            out.rescue_dags,
            plan.to_json()
        );
        assert_eq!(
            out.goodput.reexecuted_nodes,
            0,
            "seed {seed}: a salvaged node re-executed\nreplay this plan:\n{}",
            plan.to_json()
        );
        assert_eq!(
            out.goodput.output_mismatches,
            0,
            "seed {seed}: a salvaged output was not bit-identical\nreplay this plan:\n{}",
            plan.to_json()
        );
        rescued_somewhere |= out.goodput.rescue_rounds > 0;
    }
    assert!(
        rescued_somewhere,
        "no seed in the heavy pool ever needed a rescue round — the sweep is vacuous"
    );
}

#[test]
fn rescue_sweep_replays_bitwise_per_seed() {
    // Reproducibility composes with the rescue loop: a second run of the
    // same seed fingerprints identically, rescue rounds included.
    for seed in [3, 17, 29] {
        let plan = heavy_plan(seed);
        let a = run(&ChaosRunConfig::rescue(seed), &plan);
        let b = run(&ChaosRunConfig::rescue(seed), &plan);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "seed {seed}: rescue replay diverged\nreplay this plan:\n{}",
            plan.to_json()
        );
        assert_eq!(a.goodput, b.goodput, "seed {seed}: goodput diverged");
    }
}

#[test]
fn rescue_mode_salvages_what_abort_mode_throws_away() {
    // The goodput contrast: find a heavy seed that fails without rescue
    // mode, then show rescue mode completes it and accounts for the
    // salvage. (Sweeping until one such seed is found keeps the test
    // robust to profile retuning; the pool must contain at least one.)
    let mut contrasted = false;
    for seed in SEEDS {
        let plan = heavy_plan(seed);
        let abort = run(&ChaosRunConfig::quick(seed), &plan);
        if abort.all_completed() {
            continue;
        }
        let rescue = run(&ChaosRunConfig::rescue(seed), &plan);
        assert!(
            rescue.all_completed(),
            "seed {seed}: rescue mode must complete what abort mode fails\nreplay this plan:\n{}",
            plan.to_json()
        );
        assert!(
            rescue.goodput.rescue_rounds > 0,
            "seed {seed}: completion without rescue rounds contradicts the abort-mode failure"
        );
        contrasted = true;
        break;
    }
    assert!(
        contrasted,
        "every heavy seed completed even without rescue — no goodput contrast to show"
    );
}
