//! The telemetry pipeline is a pure annotation layer: two in-process
//! runs of the same scenario must produce byte-identical time series,
//! SLO reports, and span exports — and turning the sampler on must not
//! change any virtual-time result.

use swf_core::experiments::coldstart;
use swf_core::ExperimentConfig;
use swf_obs::{evaluate_slo, spans_to_json, SloSpec};

fn traced_config(series_interval_s: f64) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick();
    c.trace = true;
    c.series_interval_s = series_interval_s;
    c
}

/// One traced coldstart run: its virtual-time result plus every
/// deterministic telemetry artifact rendered to text.
fn run_once(series_interval_s: f64) -> (f64, String, String, String) {
    let obs = swf_obs::Obs::enabled();
    let _guard = swf_obs::install(obs.clone());
    let r = coldstart::run(&traced_config(series_interval_s)).expect("coldstart run");
    let series = obs.series_json().to_string();
    let slo = evaluate_slo(&SloSpec::suite_default(), &obs.metrics(), &obs.spans())
        .to_json()
        .to_string();
    let spans = spans_to_json(&[("coldstart", &obs)]).to_string();
    (r.first_request, series, slo, spans)
}

#[test]
fn series_slo_and_spans_are_bitwise_deterministic() {
    let (v1, series1, slo1, spans1) = run_once(1.0);
    let (v2, series2, slo2, spans2) = run_once(1.0);
    assert_eq!(v1.to_bits(), v2.to_bits(), "virtual results diverged");
    assert_eq!(series1, series2, "time series diverged between runs");
    assert_eq!(slo1, slo2, "SLO reports diverged between runs");
    assert_eq!(spans1, spans2, "span exports diverged between runs");
    // The sampler actually ran: the series carries samples and at least
    // one knative series (the scenario invokes a function).
    let doc: serde_json::Value = serde_json::from_str(&series1).expect("series json");
    assert!(doc["samples"].as_u64().unwrap_or(0) > 0, "no samples taken");
    assert!(
        doc["series"]
            .as_object()
            .is_some_and(|s| s.iter().any(|(k, _)| k.starts_with("knative."))),
        "no knative series sampled"
    );
}

#[test]
fn sampler_is_inert_for_virtual_results() {
    let (with_sampler, _, slo_on, _) = run_once(0.5);
    let (without_sampler, _, slo_off, _) = run_once(0.0);
    assert_eq!(
        with_sampler.to_bits(),
        without_sampler.to_bits(),
        "enabling the telemetry sampler changed a virtual-time result"
    );
    // The SLO report is a pure function of the run, so it is identical
    // whether or not the sampler ran alongside.
    assert_eq!(slo_on, slo_off, "sampler changed the SLO report");
}

#[test]
fn suite_slo_reports_catch_cold_start_rate() {
    // The coldstart scenario forces a deferred (cold) first invocation,
    // so its report must carry a measured cold-start rate.
    let obs = swf_obs::Obs::enabled();
    let _guard = swf_obs::install(obs.clone());
    coldstart::run(&traced_config(0.0)).expect("coldstart run");
    let report = evaluate_slo(&SloSpec::suite_default(), &obs.metrics(), &obs.spans());
    let rate = report.cold_start_rate.expect("cold-start rate measured");
    assert!(rate > 0.0, "coldstart scenario saw no cold starts");
}
