//! # serverless-hpc-workflows
//!
//! Full Rust reproduction of *Serverless Computing for Dynamic HPC
//! Workflows* (Thurimella et al., SC 2024): integration of a Knative-style
//! serverless platform with a Pegasus-style workflow management system on
//! HTCondor and Kubernetes, evaluated with the paper's matrix-multiplication
//! workflows in a deterministic virtual-time simulation.
//!
//! This umbrella crate re-exports every layer; see the individual crates
//! for details:
//!
//! - [`simcore`] — deterministic virtual-time async kernel
//! - [`cluster`] — nodes, network, filesystems, HTTP
//! - [`container`] — images, registry, runtime, `docker run`
//! - [`k8s`] — API server, scheduler, kubelets, controllers
//! - [`knative`] — KServices, KPA autoscaler, activator, queue-proxy
//! - [`condor`] — schedd, negotiator, startds, DAGMan
//! - [`pegasus`] — abstract workflows, catalogs, planner
//! - [`workloads`] — real matmul kernels, codecs, workflow shapes
//! - [`metrics`] — stats, regression, ternary grids, reports
//! - [`core`] — the paper's contribution + experiment runners

pub use swf_cluster as cluster;
pub use swf_condor as condor;
pub use swf_container as container;
pub use swf_core as core;
pub use swf_k8s as k8s;
pub use swf_knative as knative;
pub use swf_metrics as metrics;
pub use swf_pegasus as pegasus;
pub use swf_simcore as simcore;
pub use swf_workloads as workloads;
